package sqlparser

import (
	"testing"
)

func lexKinds(t *testing.T, src string) []token {
	t.Helper()
	toks, err := lex(src)
	if err != nil {
		t.Fatalf("lex(%q): %v", src, err)
	}
	return toks
}

func TestLexBasicTokens(t *testing.T) {
	toks := lexKinds(t, `SELECT a, 'str''x', 12, 3.14, 0xff FROM t`)
	kinds := []tokenKind{tokKeyword, tokIdent, tokPunct, tokString, tokPunct,
		tokInt, tokPunct, tokDecimal, tokPunct, tokHex, tokKeyword, tokIdent, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count %d, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d (%q): kind %d, want %d", i, toks[i].text, toks[i].kind, k)
		}
	}
	if toks[3].text != "str'x" {
		t.Errorf("escaped string: %q", toks[3].text)
	}
}

func TestLexTwoCharOperators(t *testing.T) {
	toks := lexKinds(t, "a != b <> c <= d >= e || f")
	want := []string{"a", "!=", "b", "!=", "c", "<=", "d", ">=", "e", "||", "f"}
	for i, w := range want {
		if toks[i].text != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].text, w)
		}
	}
}

func TestLexCaseInsensitiveKeywords(t *testing.T) {
	toks := lexKinds(t, "select From WHERE")
	for i, w := range []string{"SELECT", "FROM", "WHERE"} {
		if toks[i].kind != tokKeyword || toks[i].text != w {
			t.Errorf("token %d: %+v, want keyword %s", i, toks[i], w)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lexKinds(t, "SELECT -- everything\n a -- tail")
	if len(toks) != 3 { // SELECT, a, EOF
		t.Errorf("tokens: %v", toks)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "0x", "SELECT #"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) should fail", src)
		}
	}
}

func TestLexDotVsDecimal(t *testing.T) {
	// t.a is qualified reference (ident dot ident); 1.5 is a decimal.
	toks := lexKinds(t, "t.a 1.5")
	if toks[0].kind != tokIdent || toks[1].text != "." || toks[2].kind != tokIdent {
		t.Errorf("qualified ref: %v", toks[:3])
	}
	if toks[3].kind != tokDecimal {
		t.Errorf("decimal: %+v", toks[3])
	}
}

func TestLexUnicodeIdentifiers(t *testing.T) {
	toks := lexKinds(t, "SELECT código FROM daten")
	if toks[1].kind != tokIdent || toks[1].text != "código" {
		t.Errorf("unicode ident: %+v", toks[1])
	}
}
