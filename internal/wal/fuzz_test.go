package wal

import (
	"bytes"
	"math/big"
	"testing"

	"sdb/internal/storage"
	"sdb/internal/types"
)

// FuzzWALRecordRoundTrip throws arbitrary bytes at DecodeRecord and checks
// the only invariant a decoder can promise about hostile input: it never
// panics, and anything it accepts re-encodes to a payload that decodes to
// the same record (encode∘decode is idempotent). The corpus is seeded with
// a valid payload of every record type, including the share/big.Int bodies
// that only secure deployments produce, so coverage-guided mutation starts
// from deep inside the format rather than fighting the uvarint framing.
func FuzzWALRecordRoundTrip(f *testing.F) {
	schema, err := types.NewSchema([]types.Column{
		{Name: "id", Type: types.ColumnType{Kind: types.KindInt}},
		{Name: "v", Type: types.ColumnType{Kind: types.KindInt, Sensitive: true}},
		{Name: "s", Type: types.ColumnType{Kind: types.KindString}},
	})
	if err != nil {
		f.Fatal(err)
	}
	share := types.NewShare(new(big.Int).Lsh(big.NewInt(0xbeef), 300))
	seeds := []*Record{
		{Type: recCreate, Gens: storage.Generations{Rotation: 1, Catalog: 2}, Table: "t", Schema: schema},
		{
			Type: recInsert, Gens: storage.Generations{Catalog: 3}, Table: "t",
			Rows:   []types.Row{{types.NewInt(7), share, types.NewString("abc")}, {types.Null, types.Null, types.Null}},
			RowEnc: []*big.Int{new(big.Int).Lsh(big.NewInt(5), 90), nil},
			Helper: []*big.Int{big.NewInt(11), nil},
		},
		{
			Type: recUpdate, Gens: storage.Generations{Rotation: 9, Catalog: 9}, Table: "t",
			Cols: map[int][]types.Value{1: {share}, 2: {types.NewString("z")}},
		},
		{Type: recDrop, Gens: storage.Generations{Catalog: 4}, Table: "t"},
	}
	for _, rec := range seeds {
		payload, err := EncodeRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		enc, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		rec2, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("re-encoded payload does not decode: %v", err)
		}
		enc2, err := EncodeRecord(rec2)
		if err != nil {
			t.Fatalf("second encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode not stable:\n %x\n %x", enc, enc2)
		}
	})
}
