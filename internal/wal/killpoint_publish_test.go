package wal

// Kill points between version-build and version-publish. The engine's
// commit protocol logs the WAL record and then publishes the new table
// version inside one critical section; a crash between the two (simulated
// by a commit hook that panics) must behave as log-before-apply promises:
// a statement whose record is durable recovers in full, a statement that
// crashed before logging recovers not at all, and in neither case does the
// crashed process — or recovery — surface a half-published version.

import (
	"strings"
	"testing"

	"sdb/internal/engine"
	"sdb/internal/proxy"
	"sdb/internal/secure"
	"sdb/internal/storage"
)

// publishCrashDeployment is a small durable deployment plus the paraphernalia
// the crash tests need: the engine (to install hooks and run raw SQL), the
// proxy (decrypted probes), and the state file recovery loads keys from.
type publishCrashDeployment struct {
	dataDir   string
	statesDir string
	eng       *engine.Engine
	p         *proxy.Proxy
	store     *Store
}

func newPublishCrashDeployment(t *testing.T) *publishCrashDeployment {
	t.Helper()
	d := &publishCrashDeployment{dataDir: t.TempDir(), statesDir: t.TempDir()}
	secret, err := secure.Setup(256, 40, 40)
	if err != nil {
		t.Fatal(err)
	}
	cat := storage.NewCatalog()
	d.store, err = Open(d.dataDir, cat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.store.Close() })
	// MVCC pinned on: the crash simulation panics inside the commit hook,
	// and the claims under test (pre-statement state served whole while
	// logged-but-unpublished) are snapshot semantics.
	d.eng = engine.NewWithDurability(cat, secret.N(), engine.Options{MVCC: "on"}, d.store)
	if d.p, err = proxy.New(secret, d.eng); err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		"CREATE TABLE accts (id INT, bal INT SENSITIVE)",
		"INSERT INTO accts VALUES (1, 100), (2, 250)",
		"CREATE TABLE notes (id INT, tag INT)",
		"INSERT INTO notes VALUES (10, 1), (11, 2)",
	} {
		if _, err := d.p.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	if err := d.p.SaveState(statePath(d.statesDir, 0)); err != nil {
		t.Fatal(err)
	}
	return d
}

// crashAt runs one statement with a hook that panics at the given commit
// phase, returning the recovered panic value ("" means no panic fired).
func (d *publishCrashDeployment) crashAt(t *testing.T, phase engine.CommitPhase, sql string) (panicked string) {
	t.Helper()
	d.eng.SetCommitHook(func(p engine.CommitPhase, table string) {
		if p == phase {
			panic("simulated crash at phase " + string(rune('0'+int(p))))
		}
	})
	defer d.eng.SetCommitHook(nil)
	defer func() {
		if r := recover(); r != nil {
			panicked = r.(string)
		}
	}()
	if _, err := d.eng.ExecuteSQL(sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return ""
}

// recoverCopy recovers a point-in-time copy of the deployment's data dir
// and returns the decrypted probe answers plus the recovered LSN.
func (d *publishCrashDeployment) recoverCopy(t *testing.T) (string, uint64) {
	t.Helper()
	sub := t.TempDir()
	copyDir(t, d.dataDir, sub)
	return recoverAndProbe(t, sub, d.statesDir, 0)
}

// TestKillPointPublishCrash crashes INSERT and UPDATE statements between
// the WAL append and the version publish. The crashed process must keep
// serving the pre-statement state (nothing half-published), and recovery
// must replay the logged statement in full.
func TestKillPointPublishCrash(t *testing.T) {
	for _, tc := range []struct {
		name, sql string
	}{
		{"insert", "INSERT INTO notes VALUES (12, 3)"},
		{"update", "UPDATE notes SET tag = tag + 10"},
		{"drop", "DROP TABLE notes"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := newPublishCrashDeployment(t)
			before := probeAll(d.p)
			baseLSN := d.store.LSN()

			if p := d.crashAt(t, engine.CommitLogged, tc.sql); p == "" {
				t.Fatal("commit hook did not fire")
			}
			// The crashed process never published: its readers still see
			// the pre-statement state, whole.
			if got := probeAll(d.p); got != before {
				t.Fatalf("state published despite crash before publish:\ngot:\n%s\nwant:\n%s", got, before)
			}

			// Recovery replays the logged statement: logged means
			// committed, even though no reader of the crashed process
			// ever saw it.
			got, lsn := d.recoverCopy(t)
			if lsn != baseLSN+1 {
				t.Fatalf("recovered LSN = %d, want %d (the crashed statement's record)", lsn, baseLSN+1)
			}
			if got == before {
				t.Fatal("recovery dropped a logged statement")
			}
			want := d.expectAfter(t, tc.sql)
			if got != want {
				t.Fatalf("recovered answers wrong:\ngot:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// TestKillPointBuildCrash crashes the same statements before they enter
// the commit critical section: nothing is logged, so the crashed process
// and recovery must both serve the exact pre-statement state.
func TestKillPointBuildCrash(t *testing.T) {
	d := newPublishCrashDeployment(t)
	before := probeAll(d.p)
	baseLSN := d.store.LSN()

	if p := d.crashAt(t, engine.CommitBuilt, "INSERT INTO notes VALUES (12, 3)"); p == "" {
		t.Fatal("commit hook did not fire")
	}
	if got := probeAll(d.p); got != before {
		t.Fatalf("state changed despite crash before logging:\ngot:\n%s\nwant:\n%s", got, before)
	}
	got, lsn := d.recoverCopy(t)
	if lsn != baseLSN {
		t.Fatalf("recovered LSN = %d, want %d (nothing was logged)", lsn, baseLSN)
	}
	if got != before {
		t.Fatalf("recovery invented an unlogged statement:\ngot:\n%s\nwant:\n%s", got, before)
	}
}

// TestKillPointCrashThenContinue proves the crashed-commit locks were
// released: after a simulated crash the same process can run the statement
// again successfully (the hook is gone, as after a restart).
func TestKillPointCrashThenContinue(t *testing.T) {
	d := newPublishCrashDeployment(t)
	if p := d.crashAt(t, engine.CommitBuilt, "INSERT INTO notes VALUES (12, 3)"); p == "" {
		t.Fatal("commit hook did not fire")
	}
	if _, err := d.eng.ExecuteSQL("INSERT INTO notes VALUES (13, 4)"); err != nil {
		t.Fatalf("statement after crashed commit: %v", err)
	}
	got := probeAll(d.p)
	if !strings.Contains(got, "13,4") {
		t.Fatalf("post-crash insert invisible:\n%s", got)
	}
}

// expectAfter computes the golden post-statement answers on a twin
// deployment that runs the same statement without crashing. Probe output
// is decrypted plaintext, so it compares across deployments with
// different secrets.
func (d *publishCrashDeployment) expectAfter(t *testing.T, sql string) string {
	t.Helper()
	twin := newPublishCrashDeployment(t)
	if _, err := twin.eng.ExecuteSQL(sql); err != nil {
		t.Fatal(err)
	}
	return probeAll(twin.p)
}
