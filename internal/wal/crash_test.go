package wal

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"sdb/internal/engine"
	"sdb/internal/storage"
)

// TestCrashHelper is not a test: it is the victim process for
// TestKillMinusNineRecovery. When SDB_WAL_CRASH_DIR is set it opens a
// durable engine with per-statement fsync and inserts rows forever,
// appending each row id to progress.log only after the engine confirmed
// the statement — so every id in the progress file is covered by the
// FsyncAlways durability contract when the parent SIGKILLs us mid-write.
func TestCrashHelper(t *testing.T) {
	dir := os.Getenv("SDB_WAL_CRASH_DIR")
	if dir == "" {
		t.Skip("helper process for TestKillMinusNineRecovery")
	}
	cat := storage.NewCatalog()
	store, err := Open(dir, cat, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.NewWithDurability(cat, nil, engine.Options{}, store)
	if _, err := eng.ExecuteSQL("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	progress, err := os.OpenFile(filepath.Join(dir, "progress.log"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1_000_000; i++ { // until killed
		if _, err := eng.ExecuteSQL(fmt.Sprintf("INSERT INTO t VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
		if _, err := fmt.Fprintf(progress, "%d\n", i); err != nil {
			t.Fatal(err)
		}
	}
}

// TestKillMinusNineRecovery SIGKILLs a live writer mid-stream and checks
// the recovered table holds every insert the victim confirmed, in order,
// with at most the single in-flight statement beyond that.
func TestKillMinusNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test is not short")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "SDB_WAL_CRASH_DIR="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Let it build up a run of confirmed inserts, then kill without
	// warning. Poll so slow machines still get a non-trivial prefix.
	progressPath := filepath.Join(dir, "progress.log")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if data, err := os.ReadFile(progressPath); err == nil && len(data) > 64 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("victim made no progress in 10s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // land the kill mid-write if we can
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // reap; exit status is meaningless after SIGKILL

	// Confirmed inserts: complete lines of the progress file. A torn last
	// line (killed inside the fmt.Fprintf) is not confirmed.
	pf, err := os.Open(progressPath)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	confirmed := -1
	sc := bufio.NewScanner(pf)
	var lastLine string
	for sc.Scan() {
		lastLine = sc.Text()
	}
	if n, err := strconv.Atoi(lastLine); err == nil {
		confirmed = n
	}

	cat := storage.NewCatalog()
	store, err := Open(dir, cat, Options{})
	if err != nil {
		t.Fatalf("recovery after SIGKILL: %v", err)
	}
	defer store.Close()
	eng := engine.NewWithDurability(cat, nil, engine.Options{}, store)
	res, err := eng.ExecuteSQL("SELECT a FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	rows := len(res.Rows)
	t.Logf("victim confirmed %d inserts; recovered %d rows", confirmed+1, rows)
	if rows < confirmed+1 {
		t.Fatalf("lost confirmed inserts: recovered %d rows, victim confirmed %d", rows, confirmed+1)
	}
	if rows > confirmed+2 {
		t.Fatalf("recovered %d rows but only %d confirmed + 1 in-flight are possible", rows, confirmed+1)
	}
	for i, r := range res.Rows {
		if r[0].I != int64(i) {
			t.Fatalf("row %d holds %d; recovered prefix is not dense", i, r[0].I)
		}
	}
}
