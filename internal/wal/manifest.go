package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"sdb/internal/storage"
)

// Manifest is the durable root of the store, replaced atomically (write to
// a temp file, fsync, rename, fsync the directory) at every checkpoint. It
// names the snapshot files that together capture the catalog at
// CheckpointLSN and the generation counters as of that LSN; WAL records
// with LSN > CheckpointLSN are replayed on top. Any snapshot or log file
// the manifest does not reference is garbage from an interrupted
// checkpoint and is deleted on recovery.
type Manifest struct {
	Version       int                 `json:"version"`
	CheckpointLSN uint64              `json:"checkpoint_lsn"`
	Generations   storage.Generations `json:"generations"`
	Snapshots     []SnapshotRef       `json:"snapshots"`
}

// SnapshotRef names one table snapshot file.
type SnapshotRef struct {
	Table string `json:"table"`
	File  string `json:"file"`
}

const (
	manifestName    = "MANIFEST"
	manifestVersion = 1
)

// readManifest loads dir/MANIFEST. A missing file yields an empty manifest
// (fresh store), not an error.
func readManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return &Manifest{Version: manifestVersion}, nil
	}
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("wal: corrupt manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("wal: unsupported manifest version %d", m.Version)
	}
	return &m, nil
}

// writeManifest atomically replaces dir/MANIFEST. The rename is the commit
// point of a checkpoint: before it the old manifest (and old log) fully
// describe the store; after it the new one does.
func writeManifest(dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// writeFileSync writes data to path and fsyncs it.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
