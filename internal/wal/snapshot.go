package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/big"
	"os"
	"path/filepath"

	"sdb/internal/spill"
	"sdb/internal/storage"
	"sdb/internal/types"
)

// Snapshot file layout
//
//	"SDBSNAP1" | spill-coded body | u32 LE crc32(magic + body)
//
// The body is one whole table: name, schema, row count, the per-row SIES
// row ids and helpers, then each column's values (column-major, matching
// the store). Snapshots are written to a temp file and renamed into place,
// and the CRC trailer covers every byte before it, so a snapshot either
// reads back exactly or is rejected — there is no partial state.
const snapMagic = "SDBSNAP1"

// writeSnapshot serializes one table to dir/name atomically.
func writeSnapshot(dir, name string, t *storage.Table) error {
	var buf bytes.Buffer
	buf.WriteString(snapMagic)
	w := spill.NewWriter(&buf)
	if err := w.WriteString(t.Name); err != nil {
		return err
	}
	if err := writeSchema(w, t.Schema); err != nil {
		return err
	}
	v := t.Load()
	n := v.NumRows()
	if err := w.WriteUvarint(uint64(n)); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := w.WriteBig(v.RowEnc[i]); err != nil {
			return err
		}
		if err := w.WriteBig(v.Helper[i]); err != nil {
			return err
		}
	}
	for _, col := range v.Cols {
		if len(col) != n {
			return fmt.Errorf("wal: snapshot of %q: column length %d != row count %d", t.Name, len(col), n)
		}
		for _, v := range col {
			if err := w.WriteValue(v); err != nil {
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(trailer[:])

	path := filepath.Join(dir, name)
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, buf.Bytes()); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readSnapshot loads one table snapshot, verifying the CRC trailer before
// trusting a single byte of the body.
func readSnapshot(path string) (*storage.Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+4 || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("wal: %s: bad snapshot header", path)
	}
	body := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return nil, fmt.Errorf("wal: %s: snapshot checksum mismatch", path)
	}
	rd := spill.NewReader(bytes.NewReader(body[len(snapMagic):]))
	name, err := rd.ReadString()
	if err != nil {
		return nil, fmt.Errorf("wal: %s: snapshot table name: %w", path, err)
	}
	schema, err := readSchema(rd)
	if err != nil {
		return nil, fmt.Errorf("wal: %s: %w", path, err)
	}
	n, err := rd.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("wal: %s: snapshot row count: %w", path, err)
	}
	if n > maxFrame {
		return nil, fmt.Errorf("wal: %s: implausible snapshot row count %d", path, n)
	}
	rowEnc := make([]*big.Int, n)
	helper := make([]*big.Int, n)
	for i := range rowEnc {
		if rowEnc[i], err = rd.ReadBig(); err != nil {
			return nil, fmt.Errorf("wal: %s: snapshot row id: %w", path, err)
		}
		if helper[i], err = rd.ReadBig(); err != nil {
			return nil, fmt.Errorf("wal: %s: snapshot helper: %w", path, err)
		}
	}
	cols := make([][]types.Value, len(schema.Columns))
	for c := range cols {
		col := make([]types.Value, n)
		for i := range col {
			if col[i], err = rd.ReadValue(); err != nil {
				return nil, fmt.Errorf("wal: %s: snapshot value: %w", path, err)
			}
		}
		cols[c] = col
	}
	t, err := storage.NewTableWithData(name, schema, rowEnc, helper, cols)
	if err != nil {
		return nil, fmt.Errorf("wal: %s: %w", path, err)
	}
	return t, nil
}
