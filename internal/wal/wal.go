// Package wal is the service provider's durability subsystem: an
// append-only, CRC-checksummed redo log plus periodic column-snapshot
// checkpoints, tracked by an atomically-replaced MANIFEST.
//
// The engine follows a strict log-before-apply discipline: a write
// statement is fully validated, logged as exactly one WAL record, and only
// then applied to the in-memory catalog (the apply cannot fail after
// validation). Recovery therefore replays a prefix of committed statements
// — never a partial statement — regardless of where a crash lands:
//
//   - a torn final record fails its CRC and is truncated away;
//   - a checkpoint interrupted before its MANIFEST rename leaves only
//     unreferenced temp/snapshot files, which recovery deletes;
//   - replay filters records by LSN (> checkpoint LSN), so every crash
//     point between snapshot write and old-log deletion is idempotent.
//
// The store holds the same data the in-memory catalog does — shares,
// SIES row ids, helpers, plaintext insensitive columns — and nothing
// more. Key material never reaches this layer, so a stolen data
// directory is exactly as opaque as a scraped service provider.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"sdb/internal/storage"
	"sdb/internal/types"
)

// Fsync policies for Options.Fsync.
const (
	// FsyncAlways syncs after every logged statement. Batched INSERTs are
	// one record, so this is group commit at statement granularity: a
	// thousand-row insert costs one fsync.
	FsyncAlways = "always"
	// FsyncInterval leaves syncing to a background flusher (Options.
	// FsyncInterval apart); a crash may lose the last interval's
	// statements but never corrupts the store.
	FsyncInterval = "interval"
	// FsyncNever issues no explicit syncs; durability is whatever the OS
	// page cache provides. Recovery safety is unchanged.
	FsyncNever = "never"
)

// Options configures a Store.
type Options struct {
	// Fsync is one of FsyncAlways (default), FsyncInterval, FsyncNever.
	Fsync string
	// FsyncInterval is the background flush period for FsyncInterval;
	// defaults to 25ms.
	FsyncInterval time.Duration
	// CheckpointEvery triggers an automatic checkpoint after this many WAL
	// records. Zero means checkpoints happen only via Checkpoint().
	CheckpointEvery int
}

// RecoveryInfo describes the state rebuilt by Open.
type RecoveryInfo struct {
	// Generations are the proxy's rotation/catalog counters as of the last
	// durable statement; the engine and proxy reseed from them so
	// plan-cache stamps stay monotonic across restarts.
	Generations storage.Generations
	// LSN is the last durable record's sequence number.
	LSN uint64
	// Tables and Rows count what recovery loaded (snapshot + replay).
	Tables int
	Rows   int
}

// Store is a durable WAL + checkpoint store rooted at one directory. It
// implements storage.Durability. The engine serializes write statements,
// so Log* and MaybeCheckpoint are never called concurrently with each
// other; the internal mutex additionally covers the background flusher
// and direct Checkpoint/Close calls.
type Store struct {
	dir  string
	opts Options
	cat  *storage.Catalog

	mu         sync.Mutex
	f          *os.File
	logPath    string
	startLSN   uint64 // first LSN of the current log file minus… see record.go: records are positional
	lsn        uint64 // last appended LSN
	checkLSN   uint64 // LSN covered by the last checkpoint
	gens       storage.Generations
	sinceCheck int
	dirty      bool // unsynced appends (interval/never modes)
	closed     bool
	failed     error // sticky: a torn in-flight append poisons the store

	recovered RecoveryInfo

	stopFlush chan struct{}
	flushDone chan struct{}
}

var errClosed = errors.New("wal: store is closed")

// Open opens (or creates) the store at dir, recovers its contents into
// cat — which must be empty — and leaves the store ready to append.
func Open(dir string, cat *storage.Catalog, opts Options) (*Store, error) {
	if opts.Fsync == "" {
		opts.Fsync = FsyncAlways
	}
	switch opts.Fsync {
	case FsyncAlways, FsyncInterval, FsyncNever:
	default:
		return nil, fmt.Errorf("wal: unknown fsync policy %q", opts.Fsync)
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 25 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, cat: cat}
	if err := s.recover(); err != nil {
		return nil, err
	}
	if s.opts.Fsync == FsyncInterval {
		s.stopFlush = make(chan struct{})
		s.flushDone = make(chan struct{})
		go s.flushLoop()
	}
	return s, nil
}

// RecoveryInfo reports what Open rebuilt.
func (s *Store) RecoveryInfo() RecoveryInfo { return s.recovered }

// Recovered reports the generation counters as of recovery
// (storage.Durability).
func (s *Store) Recovered() storage.Generations { return s.recovered.Generations }

// LSN returns the last appended record's sequence number.
func (s *Store) LSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lsn
}

// LogPath returns the current log file's path (the crash-injection
// harness truncates copies of it).
func (s *Store) LogPath() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logPath
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// ---- storage.Durability implementation ----

// LogCreate logs a CREATE TABLE.
func (s *Store) LogCreate(t *storage.Table, g storage.Generations) error {
	return s.append(&Record{Type: recCreate, Gens: g, Table: t.Name, Schema: t.Schema})
}

// LogInsert logs one batched INSERT: all rows of the statement become one
// record, so FsyncAlways still pays a single fsync per statement.
func (s *Store) LogInsert(table string, rows []types.Row, rowEnc, helper []*big.Int, g storage.Generations) error {
	return s.append(&Record{Type: recInsert, Gens: g, Table: table, Rows: rows, RowEnc: rowEnc, Helper: helper})
}

// LogUpdate logs the fully-evaluated replacement columns of an UPDATE
// (the engine's copy-on-write column swap), not the expressions — replay
// needs no evaluator and cannot diverge from what the engine computed.
func (s *Store) LogUpdate(table string, cols map[int][]types.Value, g storage.Generations) error {
	return s.append(&Record{Type: recUpdate, Gens: g, Table: table, Cols: cols})
}

// LogDrop logs a DROP TABLE.
func (s *Store) LogDrop(table string, g storage.Generations) error {
	return s.append(&Record{Type: recDrop, Gens: g, Table: table})
}

// MaybeCheckpoint checkpoints if CheckpointEvery records have accumulated
// since the last one. The engine calls it after applying a statement, so a
// checkpoint always snapshots the state its LSN claims.
func (s *Store) MaybeCheckpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.CheckpointEvery <= 0 || s.sinceCheck < s.opts.CheckpointEvery {
		return nil
	}
	return s.checkpointLocked()
}

// ---- append path ----

func (s *Store) append(rec *Record) error {
	payload, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	buf := frame(payload)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	if s.failed != nil {
		return fmt.Errorf("wal: store failed earlier: %w", s.failed)
	}
	if _, err := s.f.Write(buf); err != nil {
		// The file may now hold a torn frame; poison the store so nothing
		// appends after it (recovery truncates the tear on next open).
		s.failed = err
		return err
	}
	s.lsn++
	s.sinceCheck++
	s.gens = rec.Gens
	switch s.opts.Fsync {
	case FsyncAlways:
		if err := s.f.Sync(); err != nil {
			s.failed = err
			return err
		}
	default:
		s.dirty = true
	}
	return nil
}

// Sync forces buffered appends to stable storage (used by graceful
// shutdown under the interval/never policies).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.closed {
		return errClosed
	}
	if s.failed != nil {
		return s.failed
	}
	if !s.dirty {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		s.failed = err
		return err
	}
	s.dirty = false
	return nil
}

func (s *Store) flushLoop() {
	defer close(s.flushDone)
	tick := time.NewTicker(s.opts.FsyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stopFlush:
			return
		case <-tick.C:
			s.mu.Lock()
			if !s.closed && s.failed == nil && s.dirty {
				if err := s.f.Sync(); err != nil {
					s.failed = err
				} else {
					s.dirty = false
				}
			}
			s.mu.Unlock()
		}
	}
}

// ---- checkpoint ----

// Checkpoint forces a checkpoint: snapshot every table, start a fresh log,
// commit the new MANIFEST, and delete the superseded log and snapshots.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	if s.closed {
		return errClosed
	}
	if s.failed != nil {
		return s.failed
	}
	// 1. Make every logged record durable: the snapshot about to be taken
	// includes their effects, and the manifest will claim their LSN.
	if s.dirty {
		if err := s.f.Sync(); err != nil {
			s.failed = err
			return err
		}
		s.dirty = false
	}

	old, err := readManifest(s.dir)
	if err != nil {
		return err
	}

	// 2. Snapshot every table. These files are invisible until the
	// manifest references them; a crash here leaves deletable garbage.
	tables := s.cat.Tables()
	refs := make([]SnapshotRef, 0, len(tables))
	for i, t := range tables {
		name := fmt.Sprintf("snap-%016x-%04d.snap", s.lsn, i)
		if err := writeSnapshot(s.dir, name, t); err != nil {
			return err
		}
		refs = append(refs, SnapshotRef{Table: t.Name, File: name})
	}

	// 3. Start the next log. Created atomically (temp + rename) so a
	// half-written header can never exist on disk.
	newPath, err := createLog(s.dir, s.lsn)
	if err != nil {
		return err
	}

	// 4. Commit: the manifest rename is the checkpoint's atomic flip.
	// Before it, the old manifest + old log reproduce the state; after
	// it, the snapshots + (empty) new log do.
	m := &Manifest{
		Version:       manifestVersion,
		CheckpointLSN: s.lsn,
		Generations:   s.gens,
		Snapshots:     refs,
	}
	if err := writeManifest(s.dir, m); err != nil {
		return err
	}

	// 5. Swap the append target.
	newF, err := os.OpenFile(newPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	oldPath := s.logPath
	s.f.Close()
	s.f = newF
	s.logPath = newPath
	s.startLSN = s.lsn
	s.checkLSN = s.lsn
	s.sinceCheck = 0

	// 6. Delete superseded files (best effort — recovery also collects
	// them, so a crash mid-deletion is fine).
	if oldPath != newPath {
		os.Remove(oldPath)
	}
	for _, ref := range old.Snapshots {
		if !refsContain(refs, ref.File) {
			os.Remove(filepath.Join(s.dir, ref.File))
		}
	}
	return nil
}

func refsContain(refs []SnapshotRef, file string) bool {
	for _, r := range refs {
		if r.File == file {
			return true
		}
	}
	return false
}

// Close flushes and closes the store. It does not checkpoint; callers
// wanting a compact restart call Checkpoint first.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	var err error
	if s.failed == nil && s.dirty {
		if serr := s.f.Sync(); serr != nil {
			err = serr
		}
		s.dirty = false
	}
	s.closed = true
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	stop := s.stopFlush
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-s.flushDone
	}
	return err
}

// ---- recovery ----

func createLog(dir string, startLSN uint64) (string, error) {
	buf := make([]byte, headerLen)
	copy(buf, logMagic)
	binary.LittleEndian.PutUint64(buf[len(logMagic):], startLSN)
	path := filepath.Join(dir, fmt.Sprintf("wal-%016x.log", startLSN))
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", err
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return path, nil
}

// recover rebuilds the catalog from MANIFEST snapshots plus WAL replay,
// repairs a torn log tail, deletes interrupted-checkpoint garbage, and
// opens the newest log for appending.
func (s *Store) recover() error {
	if len(s.cat.Names()) != 0 {
		return errors.New("wal: recovery requires an empty catalog")
	}
	m, err := readManifest(s.dir)
	if err != nil {
		return err
	}

	// Load checkpointed tables.
	rows := 0
	for _, ref := range m.Snapshots {
		t, err := readSnapshot(filepath.Join(s.dir, ref.File))
		if err != nil {
			return err
		}
		if err := s.cat.Create(t); err != nil {
			return err
		}
		rows += t.NumRows()
	}

	// Scan every log file.
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	var logs []*scannedLog
	snapReferenced := make(map[string]bool, len(m.Snapshots))
	for _, ref := range m.Snapshots {
		snapReferenced[ref.File] = true
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// Interrupted atomic write; never referenced.
			os.Remove(filepath.Join(s.dir, name))
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			sl, err := scanLogFile(filepath.Join(s.dir, name))
			if err != nil {
				return err
			}
			logs = append(logs, sl)
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			if !snapReferenced[name] {
				// Snapshot from a checkpoint that never committed.
				os.Remove(filepath.Join(s.dir, name))
			}
		}
	}
	sort.Slice(logs, func(i, j int) bool { return logs[i].startLSN < logs[j].startLSN })

	// Replay records past the checkpoint, in LSN order. Only the newest
	// log may carry a torn tail (older logs were fsynced before any newer
	// log was created); a tear elsewhere that hides needed records is
	// corruption, not a crash artifact.
	replayed := m.CheckpointLSN
	gens := m.Generations
	for i, sl := range logs {
		last := i == len(logs)-1
		end := sl.startLSN + uint64(len(sl.records))
		if sl.validLen != sl.size && !last && end > m.CheckpointLSN {
			return fmt.Errorf("wal: %s: torn tail in a non-final log", sl.path)
		}
		for j := range sl.records {
			lsn := sl.startLSN + uint64(j) + 1
			if lsn <= replayed {
				continue // already covered by the checkpoint or a prior log
			}
			if lsn != replayed+1 {
				return fmt.Errorf("wal: missing records between LSN %d and %d", replayed, lsn)
			}
			rec := &sl.records[j]
			if err := s.apply(rec); err != nil {
				return fmt.Errorf("wal: replay LSN %d: %w", lsn, err)
			}
			if rec.Type == recInsert {
				rows += len(rec.Rows)
			}
			gens = rec.Gens
			replayed = lsn
		}
	}

	// Open (or create) the append target and repair its tail.
	if len(logs) == 0 {
		path, err := createLog(s.dir, replayed)
		if err != nil {
			return err
		}
		s.logPath = path
		s.startLSN = replayed
	} else {
		newest := logs[len(logs)-1]
		if newest.validLen != newest.size {
			if err := os.Truncate(newest.path, newest.validLen); err != nil {
				return err
			}
		}
		s.logPath = newest.path
		s.startLSN = newest.startLSN
		// Drop fully-superseded older logs (a crash between a checkpoint's
		// manifest flip and its deletions leaves these behind).
		for _, sl := range logs[:len(logs)-1] {
			if sl.startLSN+uint64(len(sl.records)) <= m.CheckpointLSN {
				os.Remove(sl.path)
			}
		}
	}
	f, err := os.OpenFile(s.logPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	s.f = f
	s.lsn = replayed
	s.checkLSN = m.CheckpointLSN
	s.gens = gens
	s.recovered = RecoveryInfo{
		Generations: gens,
		LSN:         replayed,
		Tables:      len(s.cat.Names()),
		Rows:        rows,
	}
	return nil
}

// apply replays one record into the catalog. Records were validated by
// the engine before logging, so failures here mean the log and snapshot
// disagree — real corruption, reported rather than papered over.
func (s *Store) apply(rec *Record) error {
	switch rec.Type {
	case recCreate:
		return s.cat.Create(storage.NewTable(rec.Table, rec.Schema))
	case recInsert:
		t, err := s.cat.Get(rec.Table)
		if err != nil {
			return err
		}
		return t.AppendBatch(rec.Rows, rec.RowEnc, rec.Helper)
	case recUpdate:
		t, err := s.cat.Get(rec.Table)
		if err != nil {
			return err
		}
		return t.SwapCols(rec.Cols)
	case recDrop:
		return s.cat.Drop(rec.Table)
	default:
		return fmt.Errorf("unknown record type %d", rec.Type)
	}
}

var _ storage.Durability = (*Store)(nil)
