package wal

// The kill-point differential harness is the durability proof ISSUE 7 asks
// for: it runs a secure workload (shares, tokens, rotations) through the
// proxy over a durable engine, snapshots the proxy's DO state and the
// decrypted answers after every statement, then simulates a crash at every
// WAL record boundary — plus torn and corrupted mid-record writes — and
// checks that the recovered database answers exactly as the committed
// prefix did. Because the engine logs one record per write statement, WAL
// prefix k pairs with proxy state file k.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"sdb/internal/engine"
	"sdb/internal/proxy"
	"sdb/internal/secure"
	"sdb/internal/storage"
)

// killStep is one write statement of the workload: either SQL through the
// proxy or a key-management call.
type killStep struct {
	name string
	run  func(p *proxy.Proxy) error
}

func sqlStep(sql string) killStep {
	return killStep{name: sql, run: func(p *proxy.Proxy) error {
		_, err := p.Exec(sql)
		return err
	}}
}

func killWorkload() []killStep {
	return []killStep{
		sqlStep("CREATE TABLE accts (id INT, bal INT SENSITIVE)"),
		sqlStep("INSERT INTO accts VALUES (1, 100), (2, 250)"),
		sqlStep("INSERT INTO accts VALUES (3, 75)"),
		{name: "ROTATE accts.bal", run: func(p *proxy.Proxy) error {
			_, err := p.RotateColumn("accts", "bal")
			return err
		}},
		sqlStep("CREATE TABLE notes (id INT, tag INT)"),
		sqlStep("INSERT INTO notes VALUES (10, 1), (11, 2)"),
		{name: "ROTATE MASK accts", run: func(p *proxy.Proxy) error {
			_, err := p.RotateMask("accts")
			return err
		}},
		sqlStep("INSERT INTO accts VALUES (4, 525)"),
		sqlStep("DROP TABLE notes"),
	}
}

// probeAll renders the decrypted answers to a fixed probe set. Errors
// (e.g. a table that does not exist at this prefix) normalize to ERR so
// the rendering is comparable across prefixes.
func probeAll(p *proxy.Proxy) string {
	probes := []string{
		"SELECT id, bal FROM accts",
		"SELECT SUM(bal) FROM accts",
		"SELECT id, tag FROM notes",
	}
	var out strings.Builder
	for _, q := range probes {
		res, err := p.Exec(q)
		if err != nil {
			fmt.Fprintf(&out, "%s => ERR\n", q)
			continue
		}
		lines := make([]string, 0, len(res.Rows))
		for _, r := range res.Rows {
			parts := make([]string, len(r))
			for i, v := range r {
				parts[i] = fmt.Sprintf("%v", v)
			}
			lines = append(lines, strings.Join(parts, ","))
		}
		sort.Strings(lines)
		fmt.Fprintf(&out, "%s => %s\n", q, strings.Join(lines, "; "))
	}
	return out.String()
}

// runKillWorkload executes the workload over a fresh durable deployment,
// saving the proxy state and golden probe answers after every statement.
// Returns the goldens (golden[k] = answers after k statements) and the
// final log path.
func runKillWorkload(t *testing.T, dataDir, statesDir string, opts Options) (golden []string, logPath string) {
	t.Helper()
	secret, err := secure.Setup(256, 40, 40)
	if err != nil {
		t.Fatal(err)
	}
	cat := storage.NewCatalog()
	store, err := Open(dataDir, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.NewWithDurability(cat, secret.N(), engine.Options{}, store)
	p, err := proxy.New(secret, eng)
	if err != nil {
		t.Fatal(err)
	}
	saveState := func(k int) {
		if err := p.SaveState(statePath(statesDir, k)); err != nil {
			t.Fatalf("save state %d: %v", k, err)
		}
	}
	golden = append(golden, probeAll(p))
	saveState(0)
	for k, step := range killWorkload() {
		if err := step.run(p); err != nil {
			t.Fatalf("step %d (%s): %v", k+1, step.name, err)
		}
		golden = append(golden, probeAll(p))
		saveState(k + 1)
	}
	logPath = store.LogPath()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	return golden, logPath
}

func statePath(dir string, k int) string {
	return filepath.Join(dir, fmt.Sprintf("state-%02d.json", k))
}

// recoverAndProbe restores a crashed data dir (already mutated by the
// caller) with the DO state for the given committed prefix and returns the
// probe answers plus the recovered LSN.
func recoverAndProbe(t *testing.T, dir, statesDir string, prefix int) (string, uint64) {
	t.Helper()
	sp := statePath(statesDir, prefix)
	secret, err := proxy.LoadStateSecret(sp)
	if err != nil {
		t.Fatal(err)
	}
	cat := storage.NewCatalog()
	store, err := Open(dir, cat, Options{})
	if err != nil {
		t.Fatalf("prefix %d: reopen: %v", prefix, err)
	}
	defer store.Close()
	eng := engine.NewWithDurability(cat, secret.N(), engine.Options{}, store)
	p, err := proxy.NewFromStateFile(sp, eng, proxy.Options{})
	if err != nil {
		t.Fatalf("prefix %d: proxy restore: %v", prefix, err)
	}
	for _, n := range dirNames(t, dir) {
		if strings.HasSuffix(n, ".tmp") {
			t.Fatalf("prefix %d: leftover temp file %s after recovery", prefix, n)
		}
	}
	return probeAll(p), store.LSN()
}

// TestKillPointDifferential crashes at every record boundary and at torn
// and corrupted offsets inside every record, then checks committed-prefix
// equivalence of the decrypted answers.
func TestKillPointDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-point sweep is not short")
	}
	dataDir := t.TempDir()
	statesDir := t.TempDir()
	golden, logPath := runKillWorkload(t, dataDir, statesDir, Options{})

	startLSN, infos, err := LogRecords(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if startLSN != 0 {
		t.Fatalf("startLSN = %d", startLSN)
	}
	steps := killWorkload()
	if len(infos) != len(steps) {
		t.Fatalf("got %d WAL records for %d statements — the 1:1 pairing the harness depends on is broken", len(infos), len(steps))
	}
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	logName := filepath.Base(logPath)
	// ends[i] = file offset after record i; ends[0] = bare header.
	ends := make([]int64, 0, len(infos)+1)
	ends = append(ends, int64(headerLen))
	for _, inf := range infos {
		ends = append(ends, inf.End)
	}

	check := func(prefix int, label string, mutate func(dir string)) {
		sub := t.TempDir()
		copyDir(t, dataDir, sub)
		mutate(sub)
		got, lsn := recoverAndProbe(t, sub, statesDir, prefix)
		if lsn != uint64(prefix) {
			t.Errorf("%s: recovered LSN = %d, want %d", label, lsn, prefix)
		}
		if got != golden[prefix] {
			t.Errorf("%s: answers diverge from committed prefix %d\ngot:\n%s\nwant:\n%s", label, prefix, got, golden[prefix])
		}
	}
	truncateTo := func(cut int64) func(dir string) {
		return func(dir string) {
			if err := os.Truncate(filepath.Join(dir, logName), cut); err != nil {
				t.Fatal(err)
			}
		}
	}

	for i := 0; i <= len(steps); i++ {
		// Crash exactly at the boundary after record i.
		check(i, fmt.Sprintf("boundary %d", i), truncateTo(ends[i]))
		if i == len(steps) {
			continue
		}
		// Torn writes inside record i+1: a lone length byte, a torn frame
		// header, half the payload. All must recover to prefix i.
		next := ends[i+1]
		for _, d := range []int64{1, frameLen - 1, frameLen + (next-ends[i]-frameLen)/2} {
			if cut := ends[i] + d; cut > ends[i] && cut < next {
				check(i, fmt.Sprintf("torn record %d (+%d bytes)", i+1, d), truncateTo(cut))
			}
		}
		// Corrupted full-length write: record i+1 is all on disk but its
		// last payload byte flipped, so the CRC rejects it.
		check(i, fmt.Sprintf("corrupt record %d", i+1), func(dir string) {
			path := filepath.Join(dir, logName)
			data := append([]byte(nil), full...)
			data = data[:next]
			data[next-1] ^= 0xff
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestKillPointAfterCheckpoint runs the same workload with checkpoints
// enabled and sweeps the crash boundaries of the post-checkpoint log:
// recovery must splice snapshots and log tail into the same committed
// prefixes.
func TestKillPointAfterCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-point sweep is not short")
	}
	dataDir := t.TempDir()
	statesDir := t.TempDir()
	golden, logPath := runKillWorkload(t, dataDir, statesDir, Options{CheckpointEvery: 4})

	startLSN, infos, err := LogRecords(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if startLSN == 0 {
		t.Fatal("no checkpoint happened; CheckpointEvery not honored")
	}
	logName := filepath.Base(logPath)
	check := func(prefix uint64, cut int64) {
		sub := t.TempDir()
		copyDir(t, dataDir, sub)
		if err := os.Truncate(filepath.Join(sub, logName), cut); err != nil {
			t.Fatal(err)
		}
		got, lsn := recoverAndProbe(t, sub, statesDir, int(prefix))
		if lsn != prefix {
			t.Errorf("cut %d: recovered LSN = %d, want %d", cut, lsn, prefix)
		}
		if got != golden[prefix] {
			t.Errorf("cut %d: answers diverge from prefix %d\ngot:\n%s\nwant:\n%s", cut, prefix, got, golden[prefix])
		}
	}
	// Boundary right after the checkpoint (snapshot only, empty log tail),
	// then after each record in the tail.
	check(startLSN, int64(headerLen))
	for _, inf := range infos {
		check(inf.LSN, inf.End)
		// Torn one byte into the next record's frame is covered by the
		// non-checkpoint sweep; here cut mid-record to prove snapshot +
		// truncated tail still recovers the prefix.
		check(inf.LSN-1, inf.End-1)
	}
}
