package wal

import (
	"fmt"
	"testing"

	"sdb/internal/engine"
	"sdb/internal/storage"
)

// BenchmarkWALAppend measures the per-statement logging cost under each
// fsync policy: the gap between "always" and "never" is the price of the
// per-statement durability contract, and "interval" is the group-commit
// middle ground the server defaults away from.
func BenchmarkWALAppend(b *testing.B) {
	for _, policy := range []string{FsyncAlways, FsyncInterval, FsyncNever} {
		b.Run(policy, func(b *testing.B) {
			dir := b.TempDir()
			cat := storage.NewCatalog()
			store, err := Open(dir, cat, Options{Fsync: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			eng := engine.NewWithDurability(cat, nil, engine.Options{}, store)
			if _, err := eng.ExecuteSQL("CREATE TABLE t (a INT, s STRING)"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sql := fmt.Sprintf("INSERT INTO t VALUES (%d, 'row')", i)
				if _, err := eng.ExecuteSQL(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALRecover measures a cold open replaying a pure log (no
// snapshot) of the given record count.
func BenchmarkWALRecover(b *testing.B) {
	for _, records := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			dir := b.TempDir()
			cat := storage.NewCatalog()
			store, err := Open(dir, cat, Options{Fsync: FsyncNever})
			if err != nil {
				b.Fatal(err)
			}
			eng := engine.NewWithDurability(cat, nil, engine.Options{}, store)
			if _, err := eng.ExecuteSQL("CREATE TABLE t (a INT, s STRING)"); err != nil {
				b.Fatal(err)
			}
			for i := 1; i < records; i++ {
				sql := fmt.Sprintf("INSERT INTO t VALUES (%d, 'row')", i)
				if _, err := eng.ExecuteSQL(sql); err != nil {
					b.Fatal(err)
				}
			}
			if err := store.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				store, err := Open(dir, storage.NewCatalog(), Options{})
				if err != nil {
					b.Fatal(err)
				}
				if store.LSN() != uint64(records) {
					b.Fatalf("recovered LSN %d", store.LSN())
				}
				store.Close()
			}
		})
	}
}
