package wal

import (
	"math/big"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sdb/internal/engine"
	"sdb/internal/storage"
	"sdb/internal/types"
)

func testSchema(t *testing.T) types.Schema {
	t.Helper()
	s, err := types.NewSchema([]types.Column{
		{Name: "id", Type: types.ColumnType{Kind: types.KindInt}},
		{Name: "v", Type: types.ColumnType{Kind: types.KindInt, Sensitive: true}},
		{Name: "name", Type: types.ColumnType{Kind: types.KindString}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRecordRoundTrip drives every record type through encode/decode,
// including the payloads only secure deployments produce (shares, big row
// ids and helpers).
func TestRecordRoundTrip(t *testing.T) {
	share := types.NewShare(new(big.Int).Lsh(big.NewInt(0x1234abcd), 200))
	recs := []*Record{
		{Type: recCreate, Gens: storage.Generations{Rotation: 3, Catalog: 7}, Table: "Orders", Schema: testSchema(t)},
		{
			Type: recInsert, Gens: storage.Generations{Catalog: 8}, Table: "Orders",
			Rows: []types.Row{
				{types.NewInt(1), share, types.NewString("héllo")},
				{types.NewInt(-5), types.Null, types.NewString("")},
			},
			RowEnc: []*big.Int{new(big.Int).Lsh(big.NewInt(9), 100), nil},
			Helper: []*big.Int{big.NewInt(77), nil},
		},
		{
			Type: recUpdate, Gens: storage.Generations{Rotation: 4, Catalog: 8}, Table: "Orders",
			Cols: map[int][]types.Value{
				1: {share, types.NewShare(big.NewInt(42))},
				0: {types.NewInt(10), types.NewInt(20)},
			},
		},
		{Type: recDrop, Gens: storage.Generations{Rotation: 4, Catalog: 9}, Table: "Orders"},
	}
	for _, rec := range recs {
		payload, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("encode type %d: %v", rec.Type, err)
		}
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("decode type %d: %v", rec.Type, err)
		}
		if got.Type != rec.Type || got.Gens != rec.Gens || got.Table != rec.Table {
			t.Fatalf("type %d: header mismatch: %+v", rec.Type, got)
		}
		switch rec.Type {
		case recCreate:
			if got.Schema.Len() != rec.Schema.Len() {
				t.Fatalf("schema: got %d cols", got.Schema.Len())
			}
			for i, c := range rec.Schema.Columns {
				if got.Schema.Columns[i] != c {
					t.Fatalf("schema col %d: got %+v want %+v", i, got.Schema.Columns[i], c)
				}
			}
		case recInsert:
			if len(got.Rows) != len(rec.Rows) {
				t.Fatalf("rows: got %d", len(got.Rows))
			}
			for i := range rec.Rows {
				for j := range rec.Rows[i] {
					if !valueEq(got.Rows[i][j], rec.Rows[i][j]) {
						t.Fatalf("row %d col %d: got %v want %v", i, j, got.Rows[i][j], rec.Rows[i][j])
					}
				}
				wantEnc := rec.RowEnc[i]
				if wantEnc == nil {
					wantEnc = new(big.Int)
				}
				if got.RowEnc[i].Cmp(wantEnc) != 0 {
					t.Fatalf("rowEnc %d: got %v want %v", i, got.RowEnc[i], wantEnc)
				}
			}
		case recUpdate:
			if len(got.Cols) != len(rec.Cols) {
				t.Fatalf("cols: got %d", len(got.Cols))
			}
			for idx, col := range rec.Cols {
				for i := range col {
					if !valueEq(got.Cols[idx][i], col[i]) {
						t.Fatalf("col %d row %d: got %v want %v", idx, i, got.Cols[idx][i], col[i])
					}
				}
			}
		}
	}
}

func valueEq(a, b types.Value) bool {
	if a.K != b.K {
		return false
	}
	if a.K == types.KindShare {
		return a.B.Cmp(b.B) == 0
	}
	return a.I == b.I && a.S == b.S
}

// durableEngine opens a store at dir and an engine over it (plaintext-only
// deployment: n=nil exercises the full WAL machinery without key setup).
func durableEngine(t *testing.T, dir string, opts Options) (*engine.Engine, *Store) {
	t.Helper()
	cat := storage.NewCatalog()
	store, err := Open(dir, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	return engine.NewWithDurability(cat, nil, engine.Options{}, store), store
}

func mustExec(t *testing.T, e *engine.Engine, sql string) *engine.Result {
	t.Helper()
	res, err := e.ExecuteSQL(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

func queryInts(t *testing.T, e *engine.Engine, sql string) []int64 {
	t.Helper()
	res := mustExec(t, e, sql)
	out := make([]int64, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, r[0].I)
	}
	return out
}

// TestReopenReplaysLog checks the basic cycle: log writes, close, reopen,
// identical catalog, monotonic LSN, no checkpoint involved.
func TestReopenReplaysLog(t *testing.T) {
	dir := t.TempDir()
	e, store := durableEngine(t, dir, Options{})
	mustExec(t, e, "CREATE TABLE t (a INT, s STRING)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 'x'), (2, 'y')")
	mustExec(t, e, "INSERT INTO t VALUES (3, 'z')")
	mustExec(t, e, "UPDATE t SET a = a + 10 WHERE a >= 2")
	if got := store.LSN(); got != 4 {
		t.Fatalf("LSN = %d, want 4", got)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	e2, store2 := durableEngine(t, dir, Options{})
	defer store2.Close()
	info := store2.RecoveryInfo()
	if info.LSN != 4 || info.Tables != 1 || info.Rows != 3 {
		t.Fatalf("recovery info = %+v", info)
	}
	got := queryInts(t, e2, "SELECT a FROM t ORDER BY a")
	want := []int64{1, 12, 13}
	if len(got) != len(want) {
		t.Fatalf("rows: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rows: %v, want %v", got, want)
		}
	}
	// New writes continue the same sequence.
	mustExec(t, e2, "INSERT INTO t VALUES (4, 'w')")
	if store2.LSN() != 5 {
		t.Fatalf("LSN after reopen+insert = %d, want 5", store2.LSN())
	}
}

// TestDropSurvivesRestart checks DROP is redone on replay.
func TestDropSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	e, store := durableEngine(t, dir, Options{})
	mustExec(t, e, "CREATE TABLE a (x INT)")
	mustExec(t, e, "CREATE TABLE b (x INT)")
	mustExec(t, e, "INSERT INTO a VALUES (1)")
	mustExec(t, e, "DROP TABLE a")
	store.Close()

	e2, store2 := durableEngine(t, dir, Options{})
	defer store2.Close()
	if _, err := e2.ExecuteSQL("SELECT x FROM a"); err == nil {
		t.Fatal("dropped table a still queryable after recovery")
	}
	mustExec(t, e2, "SELECT x FROM b")
}

// TestCheckpointCompactsAndRecovers checks that an automatic checkpoint
// writes snapshots, truncates the log, deletes superseded files, and that
// recovery from snapshot + partial log replay matches.
func TestCheckpointCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	e, store := durableEngine(t, dir, Options{CheckpointEvery: 3})
	mustExec(t, e, "CREATE TABLE t (a INT)")
	mustExec(t, e, "INSERT INTO t VALUES (1)")
	mustExec(t, e, "INSERT INTO t VALUES (2)") // 3rd record → checkpoint
	mustExec(t, e, "INSERT INTO t VALUES (3)") // after checkpoint: replayed from log
	store.Close()

	names := dirNames(t, dir)
	logs, snaps := 0, 0
	for _, n := range names {
		switch {
		case strings.HasSuffix(n, ".log"):
			logs++
		case strings.HasSuffix(n, ".snap"):
			snaps++
		case strings.HasSuffix(n, ".tmp"):
			t.Fatalf("leftover temp file %s", n)
		}
	}
	if logs != 1 || snaps != 1 {
		t.Fatalf("want 1 log + 1 snap after checkpoint, dir: %v", names)
	}

	e2, store2 := durableEngine(t, dir, Options{})
	defer store2.Close()
	info := store2.RecoveryInfo()
	if info.LSN != 4 || info.Rows != 3 {
		t.Fatalf("recovery info = %+v", info)
	}
	if sum := queryInts(t, e2, "SELECT SUM(a) FROM t"); len(sum) != 1 || sum[0] != 6 {
		t.Fatalf("sum = %v", sum)
	}
}

// TestTornTailDiscarded truncates the final record at every byte offset
// inside it and verifies recovery drops exactly that record.
func TestTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	e, store := durableEngine(t, dir, Options{})
	mustExec(t, e, "CREATE TABLE t (a INT)")
	mustExec(t, e, "INSERT INTO t VALUES (1)")
	logPath := store.LogPath()
	_, infos, err := LogRecords(logPath)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, "INSERT INTO t VALUES (2)")
	store.Close()

	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	lastGood := infos[len(infos)-1].End
	for cut := lastGood + 1; cut < int64(len(full)); cut++ {
		sub := t.TempDir()
		copyDir(t, dir, sub)
		if err := os.Truncate(filepath.Join(sub, filepath.Base(logPath)), cut); err != nil {
			t.Fatal(err)
		}
		e2, store2 := durableEngine(t, sub, Options{})
		if info := store2.RecoveryInfo(); info.LSN != 2 || info.Rows != 1 {
			t.Fatalf("cut %d: recovery info = %+v", cut, info)
		}
		if got := queryInts(t, e2, "SELECT a FROM t"); len(got) != 1 || got[0] != 1 {
			t.Fatalf("cut %d: rows = %v", cut, got)
		}
		// The torn bytes were physically removed, so appends are clean.
		mustExec(t, e2, "INSERT INTO t VALUES (9)")
		store2.Close()
		e3, store3 := durableEngine(t, sub, Options{})
		if got := queryInts(t, e3, "SELECT a FROM t ORDER BY a"); len(got) != 2 || got[1] != 9 {
			t.Fatalf("cut %d after re-append: rows = %v", cut, got)
		}
		store3.Close()
	}
}

// TestCorruptRecordDiscarded flips one byte of the last record's payload
// (CRC mismatch) and expects recovery to drop it like a torn tail.
func TestCorruptRecordDiscarded(t *testing.T) {
	dir := t.TempDir()
	e, store := durableEngine(t, dir, Options{})
	mustExec(t, e, "CREATE TABLE t (a INT)")
	mustExec(t, e, "INSERT INTO t VALUES (1)")
	logPath := store.LogPath()
	_, infos, _ := LogRecords(logPath)
	mustExec(t, e, "INSERT INTO t VALUES (2)")
	store.Close()

	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the final record (past its 8-byte frame
	// header), invalidating the CRC.
	data[infos[len(infos)-1].End+frameLen] ^= 0xff
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	e2, store2 := durableEngine(t, dir, Options{})
	defer store2.Close()
	if got := queryInts(t, e2, "SELECT a FROM t"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("rows = %v", got)
	}
}

// TestGenerationsPersist checks the engine's plan-cache counters resume
// from the recovered values.
func TestGenerationsPersist(t *testing.T) {
	dir := t.TempDir()
	e, store := durableEngine(t, dir, Options{CheckpointEvery: 2})
	mustExec(t, e, "CREATE TABLE t (a INT)")
	mustExec(t, e, "INSERT INTO t VALUES (1)")
	mustExec(t, e, "INSERT INTO t VALUES (2)")
	rot, cat := e.Generations()
	if rot != 0 || cat != 3 {
		t.Fatalf("generations = %d/%d, want 0/3", rot, cat)
	}
	store.Close()

	e2, store2 := durableEngine(t, dir, Options{})
	defer store2.Close()
	rot2, cat2 := e2.Generations()
	if rot2 != rot || cat2 != cat {
		t.Fatalf("recovered generations = %d/%d, want %d/%d", rot2, cat2, rot, cat)
	}
	mustExec(t, e2, "INSERT INTO t VALUES (3)")
	if _, cat3 := e2.Generations(); cat3 != cat+1 {
		t.Fatalf("catalog generation after insert = %d, want %d", cat3, cat+1)
	}
}

// TestRecoveryCleansGarbage plants interrupted-checkpoint debris and
// verifies recovery removes it without touching live files.
func TestRecoveryCleansGarbage(t *testing.T) {
	dir := t.TempDir()
	e, store := durableEngine(t, dir, Options{})
	mustExec(t, e, "CREATE TABLE t (a INT)")
	mustExec(t, e, "INSERT INTO t VALUES (1)")
	store.Close()

	for _, junk := range []string{"MANIFEST.tmp", "snap-ffff-0000.snap.tmp", "snap-ffff-0000.snap"} {
		if err := os.WriteFile(filepath.Join(dir, junk), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	e2, store2 := durableEngine(t, dir, Options{})
	defer store2.Close()
	for _, n := range dirNames(t, dir) {
		if strings.HasSuffix(n, ".tmp") || n == "snap-ffff-0000.snap" {
			t.Fatalf("garbage %s survived recovery", n)
		}
	}
	if got := queryInts(t, e2, "SELECT a FROM t"); len(got) != 1 {
		t.Fatalf("rows = %v", got)
	}
}

// TestFsyncPolicies exercises the interval flusher and the never policy
// end to end (durability of a clean Close, not of a crash).
func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []string{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(policy, func(t *testing.T) {
			dir := t.TempDir()
			e, store := durableEngine(t, dir, Options{Fsync: policy, FsyncInterval: time.Millisecond})
			mustExec(t, e, "CREATE TABLE t (a INT)")
			mustExec(t, e, "INSERT INTO t VALUES (1)")
			if policy == FsyncInterval {
				time.Sleep(20 * time.Millisecond) // let the flusher run at least once
			}
			store.Close()
			e2, store2 := durableEngine(t, dir, Options{})
			defer store2.Close()
			if got := queryInts(t, e2, "SELECT a FROM t"); len(got) != 1 || got[0] != 1 {
				t.Fatalf("rows = %v", got)
			}
		})
	}
}

// TestEmptyCatalogRequired guards the recovery precondition.
func TestEmptyCatalogRequired(t *testing.T) {
	cat := storage.NewCatalog()
	if err := cat.Create(storage.NewTable("t", testSchema(t))); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(t.TempDir(), cat, Options{}); err == nil {
		t.Fatal("Open accepted a non-empty catalog")
	}
}

func dirNames(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
