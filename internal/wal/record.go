package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/big"
	"os"
	"sort"

	"sdb/internal/spill"
	"sdb/internal/storage"
	"sdb/internal/types"
)

// Log file layout
//
//	header:  "SDBWAL01" | u64 LE startLSN
//	frame:   u32 LE payloadLen | u32 LE crc32(payload) | payload
//
// A frame's payload is one record in the spill codec (every value type the
// engine stores — including secure shares — round-trips through it). The
// record at index i (1-based) of a file carries LSN startLSN+i; LSNs are
// positional, never stored per record, so a log can never claim a sequence
// it does not have. A torn tail (partial frame, or a frame whose CRC does
// not match) ends the log at the last intact frame; recovery truncates the
// file there and the discarded suffix is exactly the uncommitted suffix of
// a crashed write.
const (
	logMagic  = "SDBWAL01"
	headerLen = len(logMagic) + 8
	frameLen  = 8 // payload length + CRC, both u32 LE

	// maxFrame caps a single record so a corrupt length prefix cannot make
	// recovery attempt a multi-gigabyte allocation. 1 GiB comfortably holds
	// the largest batched INSERT or column swap this engine can produce.
	maxFrame = 1 << 30
)

// Record kinds, mirroring the engine's write statements.
const (
	recCreate = iota + 1
	recInsert
	recUpdate
	recDrop
)

// Record is one decoded redo-log record.
type Record struct {
	Type  int
	Gens  storage.Generations
	Table string
	// Create
	Schema types.Schema
	// Insert
	Rows   []types.Row
	RowEnc []*big.Int
	Helper []*big.Int
	// Update: full swapped columns keyed by column index.
	Cols map[int][]types.Value
}

// EncodeRecord serializes a record payload (without framing). Exported for
// the fuzz round-trip target.
func EncodeRecord(r *Record) ([]byte, error) {
	var buf bytes.Buffer
	w := spill.NewWriter(&buf)
	if err := w.WriteUvarint(uint64(r.Type)); err != nil {
		return nil, err
	}
	if err := w.WriteUvarint(r.Gens.Rotation); err != nil {
		return nil, err
	}
	if err := w.WriteUvarint(r.Gens.Catalog); err != nil {
		return nil, err
	}
	if err := w.WriteString(r.Table); err != nil {
		return nil, err
	}
	switch r.Type {
	case recCreate:
		if err := writeSchema(w, r.Schema); err != nil {
			return nil, err
		}
	case recInsert:
		if len(r.RowEnc) != len(r.Rows) || len(r.Helper) != len(r.Rows) {
			return nil, fmt.Errorf("wal: insert record arity mismatch (%d rows, %d row ids, %d helpers)",
				len(r.Rows), len(r.RowEnc), len(r.Helper))
		}
		if err := w.WriteUvarint(uint64(len(r.Rows))); err != nil {
			return nil, err
		}
		for i, row := range r.Rows {
			if err := w.WriteBig(r.RowEnc[i]); err != nil {
				return nil, err
			}
			if err := w.WriteBig(r.Helper[i]); err != nil {
				return nil, err
			}
			if err := w.WriteRow(row); err != nil {
				return nil, err
			}
		}
	case recUpdate:
		// Deterministic column order so identical swaps encode identically.
		idxs := make([]int, 0, len(r.Cols))
		for idx := range r.Cols {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		if err := w.WriteUvarint(uint64(len(idxs))); err != nil {
			return nil, err
		}
		for _, idx := range idxs {
			if err := w.WriteUvarint(uint64(idx)); err != nil {
				return nil, err
			}
			col := r.Cols[idx]
			if err := w.WriteUvarint(uint64(len(col))); err != nil {
				return nil, err
			}
			for _, v := range col {
				if err := w.WriteValue(v); err != nil {
					return nil, err
				}
			}
		}
	case recDrop:
		// Nothing beyond the common prefix.
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", r.Type)
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeRecord parses what EncodeRecord produced. Exported for the fuzz
// round-trip target.
func DecodeRecord(payload []byte) (*Record, error) {
	rd := spill.NewReader(bytes.NewReader(payload))
	typ, err := rd.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("wal: record type: %w", err)
	}
	rec := &Record{Type: int(typ)}
	if rec.Gens.Rotation, err = rd.ReadUvarint(); err != nil {
		return nil, fmt.Errorf("wal: record generations: %w", err)
	}
	if rec.Gens.Catalog, err = rd.ReadUvarint(); err != nil {
		return nil, fmt.Errorf("wal: record generations: %w", err)
	}
	if rec.Table, err = rd.ReadString(); err != nil {
		return nil, fmt.Errorf("wal: record table: %w", err)
	}
	switch rec.Type {
	case recCreate:
		if rec.Schema, err = readSchema(rd); err != nil {
			return nil, err
		}
	case recInsert:
		n, err := rd.ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("wal: insert row count: %w", err)
		}
		if n > maxFrame {
			return nil, fmt.Errorf("wal: implausible insert row count %d", n)
		}
		// Grow incrementally: a corrupt count must fail with a truncation
		// error on the first missing row, not a huge up-front allocation.
		for i := uint64(0); i < n; i++ {
			enc, err := rd.ReadBig()
			if err != nil {
				return nil, fmt.Errorf("wal: insert row id: %w", err)
			}
			helper, err := rd.ReadBig()
			if err != nil {
				return nil, fmt.Errorf("wal: insert helper: %w", err)
			}
			row, err := rd.ReadRow()
			if err != nil {
				return nil, fmt.Errorf("wal: insert row: %w", err)
			}
			rec.RowEnc = append(rec.RowEnc, enc)
			rec.Helper = append(rec.Helper, helper)
			rec.Rows = append(rec.Rows, row)
		}
	case recUpdate:
		n, err := rd.ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("wal: update column count: %w", err)
		}
		if n > maxFrame {
			return nil, fmt.Errorf("wal: implausible update column count %d", n)
		}
		// Small sizing hint only: a corrupt count must not pre-size the map.
		hint := n
		if hint > 64 {
			hint = 64
		}
		rec.Cols = make(map[int][]types.Value, hint)
		for i := uint64(0); i < n; i++ {
			idx, err := rd.ReadUvarint()
			if err != nil {
				return nil, fmt.Errorf("wal: update column index: %w", err)
			}
			rows, err := rd.ReadUvarint()
			if err != nil {
				return nil, fmt.Errorf("wal: update column length: %w", err)
			}
			if rows > maxFrame {
				return nil, fmt.Errorf("wal: implausible update column length %d", rows)
			}
			var col []types.Value
			for j := uint64(0); j < rows; j++ {
				v, err := rd.ReadValue()
				if err != nil {
					return nil, fmt.Errorf("wal: update value: %w", err)
				}
				col = append(col, v)
			}
			rec.Cols[int(idx)] = col
		}
	case recDrop:
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", rec.Type)
	}
	return rec, nil
}

func writeSchema(w *spill.Writer, s types.Schema) error {
	if err := w.WriteUvarint(uint64(s.Len())); err != nil {
		return err
	}
	for _, c := range s.Columns {
		if err := w.WriteString(c.Name); err != nil {
			return err
		}
		if err := w.WriteUvarint(uint64(c.Type.Kind)); err != nil {
			return err
		}
		if err := w.WriteUvarint(uint64(c.Type.Scale)); err != nil {
			return err
		}
		sens := uint64(0)
		if c.Type.Sensitive {
			sens = 1
		}
		if err := w.WriteUvarint(sens); err != nil {
			return err
		}
	}
	return nil
}

func readSchema(rd *spill.Reader) (types.Schema, error) {
	n, err := rd.ReadUvarint()
	if err != nil {
		return types.Schema{}, fmt.Errorf("wal: schema column count: %w", err)
	}
	if n > maxFrame {
		return types.Schema{}, fmt.Errorf("wal: implausible schema column count %d", n)
	}
	var cols []types.Column
	for i := uint64(0); i < n; i++ {
		var c types.Column
		if c.Name, err = rd.ReadString(); err != nil {
			return types.Schema{}, fmt.Errorf("wal: schema column name: %w", err)
		}
		kind, err := rd.ReadUvarint()
		if err != nil {
			return types.Schema{}, fmt.Errorf("wal: schema column kind: %w", err)
		}
		c.Type.Kind = types.Kind(kind)
		scale, err := rd.ReadUvarint()
		if err != nil {
			return types.Schema{}, fmt.Errorf("wal: schema column scale: %w", err)
		}
		c.Type.Scale = int(scale)
		sens, err := rd.ReadUvarint()
		if err != nil {
			return types.Schema{}, fmt.Errorf("wal: schema column sensitivity: %w", err)
		}
		c.Type.Sensitive = sens != 0
		cols = append(cols, c)
	}
	// NewSchema re-validates (unique names, sensitive ⇒ numeric), so a
	// corrupted-but-CRC-valid record can still not plant an invalid schema.
	return types.NewSchema(cols)
}

// frame wraps a payload in the on-disk frame: length, CRC, payload, in one
// contiguous buffer so the append is a single write syscall.
func frame(payload []byte) []byte {
	buf := make([]byte, frameLen+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameLen:], payload)
	return buf
}

// RecordInfo locates one intact record inside a log file: its LSN and the
// file offset just past its frame (a valid crash/truncation boundary). The
// kill-point harness enumerates these to simulate a crash after every
// record.
type RecordInfo struct {
	LSN uint64
	End int64
}

// scannedLog is one fully scanned log file.
type scannedLog struct {
	path     string
	startLSN uint64
	records  []Record
	infos    []RecordInfo
	// validLen is the offset after the last intact frame; anything past it
	// is a torn tail to truncate.
	validLen int64
	size     int64
}

// scanLogFile reads and validates a whole log file. A torn or
// CRC-mismatching tail is not an error — the scan stops at the last intact
// frame and reports validLen < size. A bad header is an error: log files
// are created atomically (tmp + rename), so a half-written header cannot
// occur and means real corruption.
func scanLogFile(path string) (*scannedLog, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sl := &scannedLog{path: path, size: int64(len(data))}
	if len(data) < headerLen || string(data[:len(logMagic)]) != logMagic {
		return nil, fmt.Errorf("wal: %s: bad log header", path)
	}
	sl.startLSN = binary.LittleEndian.Uint64(data[len(logMagic):headerLen])
	off := int64(headerLen)
	lsn := sl.startLSN
	for {
		rest := data[off:]
		if len(rest) < frameLen {
			break // clean EOF or torn frame header
		}
		plen := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if plen > maxFrame || int64(len(rest)) < frameLen+int64(plen) {
			break // torn payload (or garbage length)
		}
		payload := rest[frameLen : frameLen+int64(plen)]
		if crc32.ChecksumIEEE(payload) != crc {
			break // corrupt record: discard it and everything after
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			// CRC matched but the payload does not parse — the writer never
			// produces this, so treat it like a torn tail rather than
			// replaying garbage.
			break
		}
		off += frameLen + int64(plen)
		lsn++
		sl.records = append(sl.records, *rec)
		sl.infos = append(sl.infos, RecordInfo{LSN: lsn, End: off})
	}
	sl.validLen = off
	return sl, nil
}

// LogRecords scans a WAL log file and returns its start LSN plus the
// location of every intact record. Debugging aid and the kill-point
// harness's boundary enumerator.
func LogRecords(path string) (startLSN uint64, infos []RecordInfo, err error) {
	sl, err := scanLogFile(path)
	if err != nil {
		return 0, nil, err
	}
	return sl.startLSN, sl.infos, nil
}
