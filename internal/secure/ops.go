package secure

import (
	"math/big"

	"sdb/internal/bigmod"
)

// This file contains the SP-side secure operators — the functions the demo
// paper installs as UDFs in the host engine (§2.2). They operate purely on
// public material: shares, row helpers, tokens and the modulus n. None of
// them can be evaluated into plaintext without the DO's keys.

// Multiply is sdb_multiply(Ae, Be, n) = Ae·Be mod n, a share of A·B under
// ⟨m_A·m_B, x_A+x_B⟩ (paper §2.2). One modular multiplication per row,
// no communication.
func Multiply(ae, be, n *big.Int) *big.Int {
	return bigmod.Mul(ae, be, n)
}

// AddShares adds two shares that are under the SAME column key: since
// ve = v·vk⁻¹ with a common vk per row, ve_A + ve_B = (A+B)·vk⁻¹. The
// proxy guarantees the common key by emitting key-update tokens first.
func AddShares(ae, be, n *big.Int) *big.Int {
	return bigmod.Add(ae, be, n)
}

// SubShares is AddShares for A − B (shares under the same key).
func SubShares(ae, be, n *big.Int) *big.Int {
	return bigmod.Sub(ae, be, n)
}

// SumShares folds a column of shares under a common FLAT key (x = 0, so
// every row's item key is m): the result is a single share of ΣA under the
// same flat key. This is the server-side SUM aggregate.
func SumShares(shares []*big.Int, n *big.Int) *big.Int {
	acc := new(big.Int)
	for _, s := range shares {
		acc.Add(acc, s)
		acc.Mod(acc, n)
	}
	return acc
}

// MaskedSign interprets a revealed masked difference (A−B)·R as a sign.
// half must be floor(n/2); residues above it are negative. This is the only
// plaintext the comparison protocol exposes to the SP.
func MaskedSign(revealed, half *big.Int) int {
	if revealed.Sign() == 0 {
		return 0
	}
	if revealed.Cmp(half) > 0 {
		return -1
	}
	return 1
}
