package secure

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestKeyUpdateToken(t *testing.T) {
	s := testSecret(t)
	ckA, _ := s.NewColumnKey()
	ckC, _ := s.NewColumnKey()
	tok, err := s.KeyUpdateToken(ckA, ckC)
	if err != nil {
		t.Fatalf("KeyUpdateToken: %v", err)
	}
	r, _ := s.NewRowID()
	w := s.RowHelper(r)
	ve, _ := s.EncryptInt64(-31337, r, ckA)
	ve2 := ApplyToken(tok, ve, w, s.N())
	got, err := s.DecryptInt64(ve2, r, ckC)
	if err != nil {
		t.Fatalf("Decrypt under target key: %v", err)
	}
	if got != -31337 {
		t.Errorf("key update changed plaintext: %d", got)
	}
}

func TestKeyUpdateProperty(t *testing.T) {
	s := testSecret(t)
	f := func(v int32) bool {
		ckA, err1 := s.NewColumnKey()
		ckC, err2 := s.NewColumnKey()
		if err1 != nil || err2 != nil {
			return false
		}
		tok, err := s.KeyUpdateToken(ckA, ckC)
		if err != nil {
			return false
		}
		r, err := s.NewRowID()
		if err != nil {
			return false
		}
		ve, err := s.EncryptInt64(int64(v), r, ckA)
		if err != nil {
			return false
		}
		got, err := s.DecryptInt64(ApplyToken(tok, ve, s.RowHelper(r), s.N()), r, ckC)
		return err == nil && got == int64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAddViaCommonKey(t *testing.T) {
	// EE addition: key-update both operands to a common key, then add
	// shares. The common per-row item key factors out of the sum.
	s := testSecret(t)
	ckA, _ := s.NewColumnKey()
	ckB, _ := s.NewColumnKey()
	ckC, _ := s.NewColumnKey()
	tokA, _ := s.KeyUpdateToken(ckA, ckC)
	tokB, _ := s.KeyUpdateToken(ckB, ckC)

	r, _ := s.NewRowID()
	w := s.RowHelper(r)
	ae, _ := s.EncryptInt64(1000, r, ckA)
	be, _ := s.EncryptInt64(-1754, r, ckB)
	sum := AddShares(ApplyToken(tokA, ae, w, s.N()), ApplyToken(tokB, be, w, s.N()), s.N())
	got, err := s.DecryptInt64(sum, r, ckC)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if got != -754 {
		t.Errorf("1000 + (-1754) = %d, want -754", got)
	}
}

func TestSubViaCommonKey(t *testing.T) {
	s := testSecret(t)
	ckA, _ := s.NewColumnKey()
	ckB, _ := s.NewColumnKey()
	ckC, _ := s.NewColumnKey()
	tokA, _ := s.KeyUpdateToken(ckA, ckC)
	tokB, _ := s.KeyUpdateToken(ckB, ckC)
	r, _ := s.NewRowID()
	w := s.RowHelper(r)
	ae, _ := s.EncryptInt64(100, r, ckA)
	be, _ := s.EncryptInt64(58, r, ckB)
	diff := SubShares(ApplyToken(tokA, ae, w, s.N()), ApplyToken(tokB, be, w, s.N()), s.N())
	got, _ := s.DecryptInt64(diff, r, ckC)
	if got != 42 {
		t.Errorf("100-58 = %d, want 42", got)
	}
}

func TestConstShareToken(t *testing.T) {
	// EP addition: materialise a share of the constant, then add.
	s := testSecret(t)
	ck, _ := s.NewColumnKey()
	tok, err := s.ConstShareToken(big.NewInt(-99), ck)
	if err != nil {
		t.Fatalf("ConstShareToken: %v", err)
	}
	r, _ := s.NewRowID()
	w := s.RowHelper(r)
	ce := ApplyToken(tok, nil, w, s.N()) // Base token ignores ve
	got, err := s.DecryptInt64(ce, r, ck)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if got != -99 {
		t.Errorf("const share = %d, want -99", got)
	}
}

func TestAddPlaintextConstant(t *testing.T) {
	s := testSecret(t)
	ck, _ := s.NewColumnKey()
	tok, _ := s.ConstShareToken(big.NewInt(7), ck)
	r, _ := s.NewRowID()
	w := s.RowHelper(r)
	ae, _ := s.EncryptInt64(35, r, ck)
	sum := AddShares(ae, ApplyToken(tok, nil, w, s.N()), s.N())
	got, _ := s.DecryptInt64(sum, r, ck)
	if got != 42 {
		t.Errorf("35+7 = %d, want 42", got)
	}
}

func TestRevealToken(t *testing.T) {
	s := testSecret(t)
	ck, _ := s.NewColumnKey()
	tok, err := s.RevealToken(ck)
	if err != nil {
		t.Fatalf("RevealToken: %v", err)
	}
	r, _ := s.NewRowID()
	w := s.RowHelper(r)
	ve, _ := s.EncryptInt64(-12345, r, ck)
	revealed := ApplyToken(tok, ve, w, s.N())
	if got := s.Domain().Decode(revealed); got.Int64() != -12345 {
		t.Errorf("reveal = %s, want -12345", got)
	}
}

func TestFlattenProducesDeterministicTags(t *testing.T) {
	// flatten = key update to a flat key: equal plaintexts yield equal
	// tags across rows (DET semantics for GROUP BY / JOIN), while at rest
	// the same plaintexts had unlinkable ciphertexts.
	s := testSecret(t)
	ck, _ := s.NewColumnKey()
	flat, _ := s.FlatKey()
	tok, _ := s.KeyUpdateToken(ck, flat)

	tagOf := func(v int64) string {
		r, _ := s.NewRowID()
		ve, _ := s.EncryptInt64(v, r, ck)
		return ApplyToken(tok, ve, s.RowHelper(r), s.N()).String()
	}
	if tagOf(5) != tagOf(5) {
		t.Error("equal plaintexts must map to equal flat tags")
	}
	if tagOf(5) == tagOf(6) {
		t.Error("distinct plaintexts must map to distinct flat tags")
	}
}

func TestSumViaFlatKey(t *testing.T) {
	// Server-side SUM: flatten the column, modular-sum the tags, decrypt
	// one share with the flat key.
	s := testSecret(t)
	ck, _ := s.NewColumnKey()
	flat, _ := s.FlatKey()
	tok, _ := s.KeyUpdateToken(ck, flat)

	vals := []int64{10, -3, 42, 0, 1000000, -57}
	var want int64
	shares := make([]*big.Int, len(vals))
	for i, v := range vals {
		r, _ := s.NewRowID()
		ve, _ := s.EncryptInt64(v, r, ck)
		shares[i] = ApplyToken(tok, ve, s.RowHelper(r), s.N())
		want += v
	}
	sum := SumShares(shares, s.N())
	got, err := s.DecryptFlat(sum, flat)
	if err != nil {
		t.Fatalf("DecryptFlat: %v", err)
	}
	if got.Int64() != want {
		t.Errorf("SUM = %s, want %d", got, want)
	}
}

func TestComparisonProtocol(t *testing.T) {
	// compare(A,B): key-update to a common key, subtract, multiply by an
	// encrypted random positive mask, reveal. Only sign(A−B) leaks.
	s := testSecret(t)
	ckA, _ := s.NewColumnKey()
	ckB, _ := s.NewColumnKey()
	ckR, _ := s.NewColumnKey()
	half := new(big.Int).Rsh(s.N(), 1)

	compare := func(a, b int64) int {
		tokB, _ := s.KeyUpdateToken(ckB, ckA)
		r, _ := s.NewRowID()
		w := s.RowHelper(r)
		ae, _ := s.EncryptInt64(a, r, ckA)
		be, _ := s.EncryptInt64(b, r, ckB)
		diff := SubShares(ae, ApplyToken(tokB, be, w, s.N()), s.N())

		mask, _ := s.NewMaskValue()
		me, _ := s.EncryptMask(mask, r, ckR)
		masked := Multiply(diff, me, s.N())

		prodKey := s.MulKeys(ckA, ckR)
		rev, _ := s.RevealToken(prodKey)
		return MaskedSign(ApplyToken(rev, masked, w, s.N()), half)
	}

	cases := []struct {
		a, b int64
		want int
	}{
		{5, 3, 1}, {3, 5, -1}, {7, 7, 0},
		{-10, -2, -1}, {-2, -10, 1}, {0, 0, 0},
		{1 << 40, 1<<40 - 1, 1},
	}
	for _, c := range cases {
		if got := compare(c.a, c.b); got != c.want {
			t.Errorf("compare(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestComparisonMasksMagnitude(t *testing.T) {
	// The revealed value must be (A−B)·R for random R, never A−B itself
	// (except with negligible probability R=1): run the protocol twice on
	// the same pair and require different revealed values.
	s := testSecret(t)
	ckA, _ := s.NewColumnKey()
	ckR, _ := s.NewColumnKey()
	r, _ := s.NewRowID()
	w := s.RowHelper(r)
	ae, _ := s.EncryptInt64(1000, r, ckA)
	be, _ := s.EncryptInt64(1, r, ckA) // same key already
	diff := SubShares(ae, be, s.N())

	reveal := func() string {
		mask, _ := s.NewMaskValue()
		me, _ := s.EncryptMask(mask, r, ckR)
		masked := Multiply(diff, me, s.N())
		rev, _ := s.RevealToken(s.MulKeys(ckA, ckR))
		return ApplyToken(rev, masked, w, s.N()).String()
	}
	if reveal() == reveal() {
		t.Error("two masked reveals of the same difference coincided; masking broken")
	}
}

func TestTokenDoesNotContainColumnKey(t *testing.T) {
	// The key-update token carries m_A·m_C⁻¹ and x_A−x_C; neither component
	// may equal a raw key component (overwhelmingly unlikely if derivation
	// is correct).
	s := testSecret(t)
	ckA, _ := s.NewColumnKey()
	ckC, _ := s.NewColumnKey()
	tok, _ := s.KeyUpdateToken(ckA, ckC)
	if tok.P.Cmp(ckA.M) == 0 || tok.P.Cmp(ckC.M) == 0 {
		t.Error("token leaked a raw m component")
	}
	diff := new(big.Int).Sub(ckA.X, ckC.X)
	if tok.Q.Cmp(diff) != 0 {
		t.Error("token Q should be exactly the x difference")
	}
	if tok.Q.Cmp(ckA.X) == 0 || tok.Q.Cmp(ckC.X) == 0 {
		t.Error("token leaked a raw x component")
	}
}

func TestKeyUpdateTokenValidation(t *testing.T) {
	s := testSecret(t)
	ck, _ := s.NewColumnKey()
	if _, err := s.KeyUpdateToken(ColumnKey{}, ck); err == nil {
		t.Error("expected error for invalid source key")
	}
	if _, err := s.RevealToken(ColumnKey{}); err == nil {
		t.Error("expected error for invalid reveal key")
	}
	if _, err := s.ConstShareToken(big.NewInt(1), ColumnKey{}); err == nil {
		t.Error("expected error for invalid const-share key")
	}
}

func TestMaskedSign(t *testing.T) {
	n := big.NewInt(101)
	half := new(big.Int).Rsh(n, 1) // 50
	if MaskedSign(big.NewInt(0), half) != 0 {
		t.Error("zero must have sign 0")
	}
	if MaskedSign(big.NewInt(3), half) != 1 {
		t.Error("small residue must be positive")
	}
	if MaskedSign(big.NewInt(99), half) != -1 {
		t.Error("large residue must be negative")
	}
}
