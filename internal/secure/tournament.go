package secure

import (
	"encoding/binary"
	"fmt"
	"math/big"
)

// TournamentState is the serializable core of an sdb_min/sdb_max
// masked-comparison tournament: the current winner's flat-key tag share
// and the mask share of the same row (needed to compare that winner
// against later candidates). The engine's aggregation operator keeps one
// per partial group; spilling grouped state to disk round-trips it
// through MarshalBinary/UnmarshalBinary.
//
// The zero state (nil Tag) means "no candidate seen yet" — a group whose
// every input tag was NULL — and round-trips as such.
type TournamentState struct {
	Tag  *big.Int
	Mask *big.Int
}

// Empty reports whether the tournament has seen no candidate.
func (t TournamentState) Empty() bool { return t.Tag == nil }

// MarshalBinary encodes the state as two length-prefixed big-endian
// residues (length 0xFFFFFFFF marks the empty state).
func (t TournamentState) MarshalBinary() ([]byte, error) {
	if t.Empty() {
		return binary.BigEndian.AppendUint32(nil, emptyTournament), nil
	}
	if t.Mask == nil {
		return nil, fmt.Errorf("secure: tournament state has a tag but no mask")
	}
	out := appendResidue(nil, t.Tag)
	return appendResidue(out, t.Mask), nil
}

// UnmarshalBinary decodes MarshalBinary output.
func (t *TournamentState) UnmarshalBinary(data []byte) error {
	if len(data) >= 4 && binary.BigEndian.Uint32(data) == emptyTournament {
		t.Tag, t.Mask = nil, nil
		return nil
	}
	tag, rest, err := readResidue(data)
	if err != nil {
		return fmt.Errorf("secure: bad tournament tag: %w", err)
	}
	mask, rest, err := readResidue(rest)
	if err != nil {
		return fmt.Errorf("secure: bad tournament mask: %w", err)
	}
	if len(rest) != 0 {
		return fmt.Errorf("secure: %d trailing bytes after tournament state", len(rest))
	}
	t.Tag, t.Mask = tag, mask
	return nil
}

// emptyTournament is an impossible residue length used as the empty-state
// sentinel (a real residue of a 512-bit-plus modulus is far shorter).
const emptyTournament = 0xFFFFFFFF

func appendResidue(out []byte, v *big.Int) []byte {
	raw := v.Bytes()
	out = binary.BigEndian.AppendUint32(out, uint32(len(raw)))
	return append(out, raw...)
}

func readResidue(data []byte) (*big.Int, []byte, error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("truncated length prefix")
	}
	n := binary.BigEndian.Uint32(data)
	data = data[4:]
	if uint64(n) > uint64(len(data)) {
		return nil, nil, fmt.Errorf("residue length %d exceeds remaining %d bytes", n, len(data))
	}
	return new(big.Int).SetBytes(data[:n]), data[n:], nil
}
