package secure

import (
	"errors"
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"sdb/internal/bigmod"
)

func batchSecret(t testing.TB) *Secret {
	t.Helper()
	s, err := Setup(256, 32, 16)
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	return s
}

// TestApplyTokenBatchMatchesScalar is the scalar-vs-batch differential:
// random tokens (positive Q, negative Q, Base) over random rows must
// produce byte-identical shares either way.
func TestApplyTokenBatchMatchesScalar(t *testing.T) {
	s := batchSecret(t)
	n := s.N()
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		q := new(big.Int).Rand(r, n)
		if trial%2 == 1 {
			q.Neg(q)
		}
		tok := Token{
			P:    new(big.Int).Rand(r, n),
			Q:    q,
			Base: trial%3 == 2,
		}
		rows := 37
		ves := make([]*big.Int, rows)
		ws := make([]*big.Int, rows)
		for i := range ws {
			rid, err := s.NewRowID()
			if err != nil {
				t.Fatal(err)
			}
			ws[i] = s.RowHelper(rid)
			ves[i] = new(big.Int).Rand(r, n)
		}
		got, err := ApplyTokenBatch(tok, ves, ws, n)
		if err != nil {
			t.Fatalf("trial %d: batch: %v", trial, err)
		}
		for i := range ws {
			want := ApplyToken(tok, ves[i], ws[i], n)
			if got[i].Cmp(want) != 0 {
				t.Fatalf("trial %d row %d: batch %v != scalar %v", trial, i, got[i], want)
			}
		}
	}
}

func TestApplyTokenBatchEmpty(t *testing.T) {
	s := batchSecret(t)
	tok := Token{P: big.NewInt(3), Q: big.NewInt(-5)}
	out, err := ApplyTokenBatch(tok, nil, nil, s.N())
	if err != nil || out != nil {
		t.Fatalf("empty batch: got %v, %v; want nil, nil", out, err)
	}
}

func TestApplyTokenBatchBase(t *testing.T) {
	s := batchSecret(t)
	n := s.N()
	r := rand.New(rand.NewSource(12))
	tok := Token{P: new(big.Int).Rand(r, n), Q: new(big.Int).Rand(r, n), Base: true}
	ws := make([]*big.Int, 9)
	for i := range ws {
		rid, err := s.NewRowID()
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = s.RowHelper(rid)
	}
	// Base tokens ignore ves entirely; nil must be accepted.
	got, err := ApplyTokenBatch(tok, nil, ws, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ws {
		if want := ApplyToken(tok, nil, ws[i], n); got[i].Cmp(want) != 0 {
			t.Fatalf("row %d: batch %v != scalar %v", i, got[i], want)
		}
	}
}

// TestApplyTokenBatchNonInvertible: a negative-Q token over a helper that
// shares a factor with n must error — the scalar path returns nil there,
// and the batch must not silently hand back nil shares.
func TestApplyTokenBatchNonInvertible(t *testing.T) {
	n := big.NewInt(15) // 3·5, odd, so the Montgomery path is exercised
	tok := Token{P: big.NewInt(2), Q: big.NewInt(-1)}
	ves := []*big.Int{big.NewInt(2), big.NewInt(4)}
	ws := []*big.Int{big.NewInt(2), big.NewInt(5)} // gcd(5, 15) = 5
	if out := ApplyToken(tok, ves[1], ws[1], n); out != nil {
		t.Fatalf("scalar path: got %v, want nil for non-invertible helper", out)
	}
	out, err := ApplyTokenBatch(tok, ves, ws, n)
	if err == nil {
		t.Fatalf("batch path: got %v, want error", out)
	}
	if !errors.Is(err, bigmod.ErrNotInvertible) {
		t.Fatalf("batch error %v does not wrap ErrNotInvertible", err)
	}
}

func TestApplyTokenBatchLengthMismatch(t *testing.T) {
	s := batchSecret(t)
	tok := Token{P: big.NewInt(3), Q: big.NewInt(5)}
	_, err := ApplyTokenBatch(tok, []*big.Int{big.NewInt(1)}, []*big.Int{big.NewInt(1), big.NewInt(2)}, s.N())
	if err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

// TestApplierApplyMatchesApplyToken checks the scalar entry point of a
// long-lived applier, warm (comb-table) and cold.
func TestApplierApplyMatchesApplyToken(t *testing.T) {
	s := batchSecret(t)
	n := s.N()
	r := rand.New(rand.NewSource(13))
	rid, err := s.NewRowID()
	if err != nil {
		t.Fatal(err)
	}
	w := s.RowHelper(rid)
	for trial := 0; trial < 4; trial++ {
		q := new(big.Int).Rand(r, n)
		if trial%2 == 1 {
			q.Neg(q)
		}
		tok := Token{P: new(big.Int).Rand(r, n), Q: q}
		a := NewTokenApplier(tok, n)
		// Hammer one helper past the comb build threshold.
		for i := 0; i < 40; i++ {
			ve := new(big.Int).Rand(r, n)
			got, err := a.Apply(ve, w)
			if err != nil {
				t.Fatal(err)
			}
			if want := ApplyToken(tok, ve, w, n); got.Cmp(want) != 0 {
				t.Fatalf("trial %d iter %d: %v != %v", trial, i, got, want)
			}
		}
	}
}

func TestEncryptBatchMatchesScalar(t *testing.T) {
	s := batchSecret(t)
	ck, err := s.NewColumnKey()
	if err != nil {
		t.Fatal(err)
	}
	var reqs []EncRequest
	var want []*big.Int
	for i := 0; i < 20; i++ {
		rid, err := s.NewRowID()
		if err != nil {
			t.Fatal(err)
		}
		v := big.NewInt(int64(i*7 - 31))
		rq, err := s.NewEncRequest(v, rid, ck)
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, rq)
		sc, err := s.Encrypt(v, rid, ck)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, sc)
	}
	got, err := s.EncryptBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Cmp(want[i]) != 0 {
			t.Fatalf("row %d: batch %v != scalar %v", i, got[i], want[i])
		}
	}
	if out, err := s.EncryptBatch(nil); err != nil || out != nil {
		t.Fatalf("empty encrypt batch: got %v, %v", out, err)
	}
}

func TestFlatDecryptorMatchesDecryptFlat(t *testing.T) {
	s := batchSecret(t)
	ck, err := s.FlatKey()
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.NewFlatDecryptor(ck)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(14))
	for i := 0; i < 50; i++ {
		ve := new(big.Int).Rand(r, s.N())
		want, err := s.DecryptFlat(ve, ck)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.Decrypt(ve); got.Cmp(want) != 0 {
			t.Fatalf("iter %d: %v != %v", i, got, want)
		}
	}
	nonFlat, err := s.NewColumnKey()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewFlatDecryptor(nonFlat); err == nil {
		t.Fatal("expected error for non-flat key")
	}
}

// TestTokenStringRedacted: formatting a token must not leak P or Q.
func TestTokenStringRedacted(t *testing.T) {
	p, _ := new(big.Int).SetString("123456789123456789123456789", 10)
	q, _ := new(big.Int).SetString("987654321987654321987654321", 10)
	tok := Token{P: p, Q: q}
	str := tok.String()
	if strings.Contains(str, p.String()) || strings.Contains(str, q.String()) {
		t.Fatalf("Token.String() leaks key material: %s", str)
	}
	if !strings.Contains(str, "update") {
		t.Fatalf("Token.String() lost its kind: %s", str)
	}
	if got := (Token{P: p, Q: q, Base: true}).String(); !strings.Contains(got, "const") {
		t.Fatalf("Base token kind missing: %s", got)
	}
}

// TestMontBatchConcurrent exercises one shared applier from parallel
// goroutines (the engine's chunk workers share the applier of a compiled
// expression); run under -race by ci.sh's `-run Mont` pass.
func TestMontBatchConcurrent(t *testing.T) {
	s := batchSecret(t)
	n := s.N()
	r := rand.New(rand.NewSource(15))
	tok := Token{P: new(big.Int).Rand(r, n), Q: new(big.Int).Neg(new(big.Int).Rand(r, n))}
	a := NewTokenApplier(tok, n)
	rows := 64
	ves := make([]*big.Int, rows)
	ws := make([]*big.Int, rows)
	for i := range ws {
		rid, err := s.NewRowID()
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = s.RowHelper(rid)
		ves[i] = new(big.Int).Rand(r, n)
	}
	want, err := a.ApplyBatch(ves, ws)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(lo int) {
			got, err := a.ApplyBatch(ves[lo:lo+8], ws[lo:lo+8])
			if err != nil {
				done <- err
				return
			}
			for i := range got {
				if got[i].Cmp(want[lo+i]) != 0 {
					done <- errors.New("concurrent batch mismatch")
					return
				}
			}
			done <- nil
		}(g * 8)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
