package secure

import (
	"encoding/json"
	"testing"
)

func TestSecretRoundTrip(t *testing.T) {
	s := testSecret(t)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	s2, err := UnmarshalSecret(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if s2.N().Cmp(s.N()) != 0 {
		t.Error("modulus changed through round trip")
	}
	// A value encrypted with the original must decrypt with the restored
	// secret under the same keys.
	ck, _ := s.NewColumnKey()
	r, _ := s.NewRowID()
	ve, _ := s.EncryptInt64(987654, r, ck)
	got, err := s2.DecryptInt64(ve, r, ck)
	if err != nil || got != 987654 {
		t.Errorf("decrypt after round trip = %d, %v", got, err)
	}
}

func TestParamsRoundTrip(t *testing.T) {
	s := testSecret(t)
	data, err := json.Marshal(s.Params())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	p, err := UnmarshalParams(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if p.N.Cmp(s.N()) != 0 {
		t.Error("modulus changed")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalSecret([]byte(`{"p1":"zzz"}`)); err == nil {
		t.Error("expected error for bad hex")
	}
	if _, err := UnmarshalSecret([]byte(`not json`)); err == nil {
		t.Error("expected error for bad json")
	}
	if _, err := UnmarshalParams([]byte(`{"n":"-5"}`)); err == nil {
		t.Error("expected error for bad modulus")
	}
	if _, err := UnmarshalParams([]byte(`{`)); err == nil {
		t.Error("expected error for bad json")
	}
}
