package secure

import (
	"math/big"
	"testing"
	"testing/quick"

	"sdb/internal/bigmod"
)

// paperSecret reproduces the parameters of the paper's Figure 1 worked
// example: ρ1=5, ρ2=7 (n=35), g=2.
func paperSecret(t *testing.T) *Secret {
	t.Helper()
	s, err := SetupFromPrimes(big.NewInt(5), big.NewInt(7), big.NewInt(2), 2, 1)
	if err != nil {
		t.Fatalf("SetupFromPrimes: %v", err)
	}
	return s
}

// testSecret builds a fast but realistic secret for protocol tests.
func testSecret(t testing.TB) *Secret {
	t.Helper()
	s, err := Setup(512, 62, 80)
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	return s
}

// TestPaperFigure1Vector checks the exact numbers printed in Figure 1 of
// the paper: with g=2, n=35 and ck_A = ⟨2,2⟩, rows 1, 2, 8 have item keys
// 8, 32, 32 and the values 2, 4, 3 encrypt to 9, 22, 34.
func TestPaperFigure1Vector(t *testing.T) {
	s := paperSecret(t)
	ck := ColumnKey{M: big.NewInt(2), X: big.NewInt(2)}
	rows := []struct {
		r, v, wantVK, wantVE int64
	}{
		{1, 2, 8, 9},
		{2, 4, 32, 22},
		{8, 3, 32, 34},
	}
	for _, row := range rows {
		rid := RowID{R: big.NewInt(row.r)}
		vk := s.ItemKey(rid, ck)
		if vk.Int64() != row.wantVK {
			t.Errorf("ItemKey(r=%d) = %s, want %d", row.r, vk, row.wantVK)
		}
		ve, err := s.EncryptInt64(row.v, rid, ck)
		if err != nil {
			t.Fatalf("Encrypt(r=%d): %v", row.r, err)
		}
		if ve.Int64() != row.wantVE {
			t.Errorf("Encrypt(r=%d, v=%d) = %s, want %d", row.r, row.v, ve, row.wantVE)
		}
		got, err := s.DecryptInt64(ve, rid, ck)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if got != row.v {
			t.Errorf("Decrypt(r=%d) = %d, want %d", row.r, got, row.v)
		}
	}
}

func TestSetupRejectsBadInput(t *testing.T) {
	if _, err := Setup(8, 2, 1); err == nil {
		t.Error("expected error for tiny modulus")
	}
	if _, err := SetupFromPrimes(big.NewInt(4), big.NewInt(7), big.NewInt(2), 2, 1); err == nil {
		t.Error("expected error for composite factor")
	}
	if _, err := SetupFromPrimes(big.NewInt(5), big.NewInt(7), big.NewInt(5), 2, 1); err == nil {
		t.Error("expected error for g not co-prime with n")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	s := testSecret(t)
	ck, err := s.NewColumnKey()
	if err != nil {
		t.Fatalf("NewColumnKey: %v", err)
	}
	for _, v := range []int64{0, 1, -1, 123456789, -987654321, 1<<62 - 1} {
		r, err := s.NewRowID()
		if err != nil {
			t.Fatalf("NewRowID: %v", err)
		}
		ve, err := s.EncryptInt64(v, r, ck)
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", v, err)
		}
		got, err := s.DecryptInt64(ve, r, ck)
		if err != nil {
			t.Fatalf("Decrypt(%d): %v", v, err)
		}
		if got != v {
			t.Errorf("round trip %d -> %d", v, got)
		}
	}
}

func TestEncryptRejectsOutOfDomain(t *testing.T) {
	s := paperSecret(t) // bound = 2^2 = 4
	ck := ColumnKey{M: big.NewInt(2), X: big.NewInt(2)}
	r := RowID{R: big.NewInt(1)}
	if _, err := s.EncryptInt64(100, r, ck); err == nil {
		t.Error("expected out-of-domain error")
	}
}

func TestRowHelperConsistentWithItemKey(t *testing.T) {
	// vk must equal m · w^x mod n where w = g^r: this identity is what lets
	// the SP apply tokens using only w.
	s := testSecret(t)
	ck, _ := s.NewColumnKey()
	r, _ := s.NewRowID()
	w := s.RowHelper(r)
	viaHelper := bigmod.Mul(ck.M, bigmod.Exp(w, ck.X, s.N()), s.N())
	if viaHelper.Cmp(s.ItemKey(r, ck)) != 0 {
		t.Error("item key disagrees with m·w^x")
	}
}

func TestCPAUnlinkability(t *testing.T) {
	// Experiment E8: equal plaintexts under distinct rows must produce
	// distinct ciphertexts (per-row item keys randomize), unlike a DET
	// scheme where they collide.
	s := testSecret(t)
	ck, _ := s.NewColumnKey()
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		r, _ := s.NewRowID()
		ve, err := s.EncryptInt64(42, r, ck)
		if err != nil {
			t.Fatalf("Encrypt: %v", err)
		}
		key := ve.String()
		if seen[key] {
			t.Fatal("two rows encrypted 42 to the same ciphertext")
		}
		seen[key] = true
	}
}

func TestMultiplyOperator(t *testing.T) {
	// sdb_multiply: C_e = A_e·B_e, ck_C = ⟨m_A·m_B, x_A+x_B⟩ (paper §2.2).
	s := testSecret(t)
	ckA, _ := s.NewColumnKey()
	ckB, _ := s.NewColumnKey()
	r, _ := s.NewRowID()
	ae, _ := s.EncryptInt64(1234, r, ckA)
	be, _ := s.EncryptInt64(-567, r, ckB)
	ce := Multiply(ae, be, s.N())
	ckC := s.MulKeys(ckA, ckB)
	got, err := s.DecryptInt64(ce, r, ckC)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if got != 1234*-567 {
		t.Errorf("multiply = %d, want %d", got, 1234*-567)
	}
}

func TestMultiplyProperty(t *testing.T) {
	s := testSecret(t)
	ckA, _ := s.NewColumnKey()
	ckB, _ := s.NewColumnKey()
	ckC := s.MulKeys(ckA, ckB)
	f := func(a, b int32) bool {
		r, err := s.NewRowID()
		if err != nil {
			return false
		}
		ae, err1 := s.EncryptInt64(int64(a), r, ckA)
		be, err2 := s.EncryptInt64(int64(b), r, ckB)
		if err1 != nil || err2 != nil {
			return false
		}
		got, err := s.DecryptInt64(Multiply(ae, be, s.N()), r, ckC)
		return err == nil && got == int64(a)*int64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMulPlainKey(t *testing.T) {
	// EP multiplication costs the SP nothing: the proxy re-keys only.
	s := testSecret(t)
	ckA, _ := s.NewColumnKey()
	r, _ := s.NewRowID()
	ve, _ := s.EncryptInt64(21, r, ckA)
	ckC, err := s.MulPlainKey(ckA, big.NewInt(3))
	if err != nil {
		t.Fatalf("MulPlainKey: %v", err)
	}
	got, err := s.DecryptInt64(ve, r, ckC)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if got != 63 {
		t.Errorf("3·21 = %d, want 63", got)
	}
}

func TestMulPlainKeyNegativeConstant(t *testing.T) {
	s := testSecret(t)
	ckA, _ := s.NewColumnKey()
	r, _ := s.NewRowID()
	ve, _ := s.EncryptInt64(10, r, ckA)
	ckC, err := s.MulPlainKey(ckA, big.NewInt(-4))
	if err != nil {
		t.Fatalf("MulPlainKey: %v", err)
	}
	got, _ := s.DecryptInt64(ve, r, ckC)
	if got != -40 {
		t.Errorf("-4·10 = %d, want -40", got)
	}
}

func TestMulPlainKeyRejectsZero(t *testing.T) {
	s := testSecret(t)
	ckA, _ := s.NewColumnKey()
	if _, err := s.MulPlainKey(ckA, big.NewInt(0)); err == nil {
		t.Error("expected error for zero constant")
	}
}

func TestNegKey(t *testing.T) {
	s := testSecret(t)
	ckA, _ := s.NewColumnKey()
	r, _ := s.NewRowID()
	ve, _ := s.EncryptInt64(77, r, ckA)
	got, _ := s.DecryptInt64(ve, r, s.NegKey(ckA))
	if got != -77 {
		t.Errorf("NegKey decrypt = %d, want -77", got)
	}
}

func TestDecryptFlatRequiresFlatKey(t *testing.T) {
	s := testSecret(t)
	ck, _ := s.NewColumnKey()
	if _, err := s.DecryptFlat(big.NewInt(1), ck); err == nil {
		t.Error("expected error for non-flat key")
	}
}

func TestNewMaskValuePositiveAndBounded(t *testing.T) {
	s := testSecret(t)
	bound := s.maskBound()
	for i := 0; i < 50; i++ {
		m, err := s.NewMaskValue()
		if err != nil {
			t.Fatalf("NewMaskValue: %v", err)
		}
		if m.Sign() <= 0 || m.Cmp(bound) >= 0 {
			t.Fatalf("mask %s outside [1, 2^maskWidth)", m)
		}
	}
}
