package secure

import (
	"encoding/json"
	"fmt"
	"math/big"
)

// secretJSON is the on-disk form of the DO's scheme secret. It lives in the
// proxy's key store only — never ship it to the SP.
type secretJSON struct {
	P1        string `json:"p1"`
	P2        string `json:"p2"`
	G         string `json:"g"`
	ValueBits int    `json:"value_bits"`
	MaskBits  int    `json:"mask_bits"`
}

// paramsJSON is the public half (safe for the SP).
type paramsJSON struct {
	N string `json:"n"`
}

// MarshalJSON serialises the secret (hex components).
func (s *Secret) MarshalJSON() ([]byte, error) {
	return json.Marshal(secretJSON{
		P1:        s.p1.Text(16),
		P2:        s.p2.Text(16),
		G:         s.g.Text(16),
		ValueBits: s.domainValueBits(),
		MaskBits:  s.maskWidth,
	})
}

// UnmarshalSecret reconstructs a Secret from MarshalJSON output.
func UnmarshalSecret(data []byte) (*Secret, error) {
	var sj secretJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return nil, fmt.Errorf("secure: bad secret file: %w", err)
	}
	p1, ok1 := new(big.Int).SetString(sj.P1, 16)
	p2, ok2 := new(big.Int).SetString(sj.P2, 16)
	g, ok3 := new(big.Int).SetString(sj.G, 16)
	if !ok1 || !ok2 || !ok3 {
		return nil, fmt.Errorf("secure: bad hex in secret file")
	}
	return SetupFromPrimes(p1, p2, g, sj.ValueBits, sj.MaskBits)
}

// MarshalJSON serialises the public parameters.
func (p *Params) MarshalJSON() ([]byte, error) {
	return json.Marshal(paramsJSON{N: p.N.Text(16)})
}

// UnmarshalParams reconstructs public parameters.
func UnmarshalParams(data []byte) (*Params, error) {
	var pj paramsJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return nil, fmt.Errorf("secure: bad params file: %w", err)
	}
	n, ok := new(big.Int).SetString(pj.N, 16)
	if !ok || n.Sign() <= 0 {
		return nil, fmt.Errorf("secure: bad modulus in params file")
	}
	return &Params{N: n}, nil
}

// domainValueBits recovers the value budget from the domain bound.
func (s *Secret) domainValueBits() int {
	return s.domain.Bound().BitLen() - 1
}
