package secure

import (
	"fmt"
	"math/big"

	"sdb/internal/bigmod"
)

// Token is the only key material the proxy ever ships to the SP. Applied to
// a share ve with row helper w = g^r, the SP computes
//
//	out = P · ve · w^Q mod n
//
// (Q may be negative; w is invertible so w^Q is well defined.) Choosing
// P and Q appropriately yields every key transformation SDB needs:
//
//   - key update ck_A → ck_C:  P = m_A·m_C⁻¹, Q = x_A − x_C
//   - flatten to DET tag:      the special case x_C = 0
//   - reveal (decrypt at SP):  the special case ck_C = ⟨1, 0⟩
//
// With Base set, the SP ignores ve and computes P·w^Q directly, which
// materialises a share of a constant (used by plaintext addition).
//
// A token determines only differences of key components, never a column
// key itself, so possession of tokens does not decrypt columns other than
// those deliberately revealed.
type Token struct {
	// P is the multiplicative component.
	P *big.Int
	// Q is the (possibly negative) exponent applied to the row helper.
	Q *big.Int
	// Base, if true, means the token manufactures a share from the row
	// helper alone (constant-share token) instead of transforming ve.
	Base bool
}

// Clone returns a deep copy.
func (t Token) Clone() Token {
	return Token{P: new(big.Int).Set(t.P), Q: new(big.Int).Set(t.Q), Base: t.Base}
}

// String renders the token WITHOUT its key material: P and Q are key
// differences (e.g. m_A·m_C⁻¹ and x_A−x_C), so printing them into a log
// or error message leaks exactly what a token is supposed to protect.
// Only the kind and the component widths survive formatting.
func (t Token) String() string {
	kind := "update"
	if t.Base {
		kind = "const"
	}
	return fmt.Sprintf("token{%s p=<%d bits> q=<%d bits>}", kind, t.P.BitLen(), t.Q.BitLen())
}

// KeyUpdateToken builds the token transforming shares under from into
// shares under to: P = m_from·m_to⁻¹ mod n, Q = x_from − x_to.
//
// Correctness: ve' = P·ve·w^Q = (m_A/m_C)·v·m_A⁻¹·w^(−x_A)·w^(x_A−x_C)
// = v·(m_C·w^(x_C))⁻¹, a well-formed share under to.
func (s *Secret) KeyUpdateToken(from, to ColumnKey) (Token, error) {
	if !from.valid(s.params.N) || to.M == nil || to.X == nil {
		return Token{}, fmt.Errorf("secure: invalid column key in key update")
	}
	mInv, err := bigmod.Inv(to.M, s.params.N)
	if err != nil {
		return Token{}, fmt.Errorf("secure: target key not invertible: %w", err)
	}
	return Token{
		P: bigmod.Mul(from.M, mInv, s.params.N),
		Q: new(big.Int).Sub(from.X, to.X),
	}, nil
}

// RevealToken builds the token that decrypts a column at the SP: the key
// update to ⟨1, 0⟩, i.e. P = m, Q = x. Issuing it is an explicit, audited
// act of disclosure — the comparison protocol only ever reveals masked
// differences, never raw columns, unless the query's answer itself is the
// column.
func (s *Secret) RevealToken(ck ColumnKey) (Token, error) {
	if !ck.valid(s.params.N) {
		return Token{}, fmt.Errorf("secure: invalid column key in reveal")
	}
	return Token{
		P: new(big.Int).Set(ck.M),
		Q: new(big.Int).Set(ck.X),
	}, nil
}

// ConstShareToken builds the token that materialises, for every row, a
// share of the constant c under column key ck: the SP computes
// P·w^Q = c·m⁻¹·w^(−x) = c·vk⁻¹. Plaintext addition A + c rewrites to
// AddShares(A, ConstShare(c)) after key-updating A to ck.
func (s *Secret) ConstShareToken(c *big.Int, ck ColumnKey) (Token, error) {
	if !ck.valid(s.params.N) {
		return Token{}, fmt.Errorf("secure: invalid column key in const share")
	}
	enc, err := s.domain.Encode(c)
	if err != nil {
		return Token{}, err
	}
	mInv, err := bigmod.Inv(ck.M, s.params.N)
	if err != nil {
		return Token{}, fmt.Errorf("secure: column key not invertible: %w", err)
	}
	return Token{
		P:    bigmod.Mul(enc, mInv, s.params.N),
		Q:    new(big.Int).Neg(ck.X),
		Base: true,
	}, nil
}

// ApplyToken is the SP-side UDF: out = P·ve·w^Q mod n (or P·w^Q for
// constant-share tokens). It uses only public material — the token, the
// stored share and the stored row helper. The w^Q exponentiation goes
// through the fixed-base cache: a row helper touched by several tokens in
// one query, or re-touched across queries and rotations, stops paying full
// square-and-multiply.
// It returns nil when t.Q is negative and w is not invertible modulo n
// (mirroring big.Int.Exp); stored helpers are always invertible, so a nil
// here means corrupt or adversarial inputs.
func ApplyToken(t Token, ve, w, n *big.Int) *big.Int {
	out := bigmod.ExpCached(w, t.Q, n)
	if out == nil {
		return nil
	}
	out = bigmod.Mul(out, t.P, n)
	if !t.Base {
		out = bigmod.Mul(out, ve, n)
	}
	return out
}
