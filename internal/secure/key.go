package secure

import (
	"errors"
	"fmt"
	"math/big"

	"sdb/internal/bigmod"
)

// ColumnKey is the per-column secret ck = ⟨m, x⟩ (paper §2.1). It never
// leaves the DO; the SP only ever sees tokens derived from key differences.
//
// X is kept as a plain integer (not reduced modulo φ(n)): reducing would
// make token exponents uniform on [0, φ), and observing enough of them
// would let the SP estimate φ(n) and factor n. Exponent arithmetic is
// congruent mod φ(n) either way.
type ColumnKey struct {
	M *big.Int
	X *big.Int
}

// Clone returns a deep copy.
func (ck ColumnKey) Clone() ColumnKey {
	return ColumnKey{M: new(big.Int).Set(ck.M), X: new(big.Int).Set(ck.X)}
}

// Equal reports component-wise equality.
func (ck ColumnKey) Equal(other ColumnKey) bool {
	return ck.M.Cmp(other.M) == 0 && ck.X.Cmp(other.X) == 0
}

func (ck ColumnKey) String() string {
	return fmt.Sprintf("⟨m=%s, x=%s⟩", ck.M, ck.X)
}

// valid reports whether the key components are in range for modulus n.
func (ck ColumnKey) valid(n *big.Int) bool {
	return ck.M != nil && ck.X != nil &&
		ck.M.Sign() > 0 && ck.M.Cmp(n) < 0 && ck.X.Sign() >= 0
}

// NewColumnKey draws a fresh random column key: m uniform over Z_n^*,
// x uniform over [1, n).
func (s *Secret) NewColumnKey() (ColumnKey, error) {
	m, err := bigmod.RandInvertible(s.params.N)
	if err != nil {
		return ColumnKey{}, err
	}
	x, err := bigmod.Rand(s.params.N)
	if err != nil {
		return ColumnKey{}, err
	}
	return ColumnKey{M: m, X: x}, nil
}

// FlatKey returns a column key with x = 0. Under a flat key the item key is
// m for every row, so shares become deterministic per plaintext: this is
// what the SUM, GROUP BY and equi-JOIN rewrites key-update into.
func (s *Secret) FlatKey() (ColumnKey, error) {
	m, err := bigmod.RandInvertible(s.params.N)
	if err != nil {
		return ColumnKey{}, err
	}
	return ColumnKey{M: m, X: new(big.Int)}, nil
}

// MulKeys returns the column key of the product column: multiplying two
// shares ve_A·ve_B mod n yields a share of A·B under ⟨m_A·m_B, x_A+x_B⟩
// (paper §2.2). This is pure DO-side bookkeeping; the SP does one modular
// multiplication per row and nothing else.
func (s *Secret) MulKeys(a, b ColumnKey) ColumnKey {
	return ColumnKey{
		M: bigmod.Mul(a.M, b.M, s.params.N),
		X: new(big.Int).Add(a.X, b.X),
	}
}

// MulPlainKey returns the column key under which the *unchanged* shares of
// A represent the column c·A. Since ve = v·vk⁻¹, reinterpreting the same ve
// as c·v requires vk' = c·vk, i.e. m' = c·m. The SP does no work at all for
// plaintext multiplication. c must be invertible mod n and non-zero.
func (s *Secret) MulPlainKey(a ColumnKey, c *big.Int) (ColumnKey, error) {
	enc, err := s.domain.Encode(c)
	if err != nil {
		return ColumnKey{}, err
	}
	if enc.Sign() == 0 {
		return ColumnKey{}, errors.New("secure: multiplication by zero must be folded to a literal, not keyed")
	}
	if !bigmod.Coprime(enc, s.params.N) {
		return ColumnKey{}, fmt.Errorf("secure: constant %s not invertible mod n", c)
	}
	return ColumnKey{
		M: bigmod.Mul(a.M, enc, s.params.N),
		X: new(big.Int).Set(a.X),
	}, nil
}

// NegKey returns the column key under which the unchanged shares of A
// represent −A: m' = (n−1)·m, the plaintext-multiplication rule for c = −1.
func (s *Secret) NegKey(a ColumnKey) ColumnKey {
	minusOne := new(big.Int).Sub(s.params.N, one)
	return ColumnKey{
		M: bigmod.Mul(a.M, minusOne, s.params.N),
		X: new(big.Int).Set(a.X),
	}
}
