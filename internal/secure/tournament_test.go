package secure

import (
	"math/big"
	"testing"
)

func TestTournamentStateRoundTrip(t *testing.T) {
	tag, _ := new(big.Int).SetString("deadbeefcafe0123456789abcdef", 16)
	mask := big.NewInt(0) // a legitimate residue can be zero
	cases := []TournamentState{
		{},                     // empty: no candidate seen
		{Tag: tag, Mask: mask}, // zero mask residue
		{Tag: big.NewInt(1), Mask: tag},
		{Tag: tag, Mask: new(big.Int).Lsh(tag, 300)},
	}
	for i, st := range cases {
		raw, err := st.MarshalBinary()
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		var got TournamentState
		if err := got.UnmarshalBinary(raw); err != nil {
			t.Fatalf("case %d: unmarshal: %v", i, err)
		}
		if got.Empty() != st.Empty() {
			t.Fatalf("case %d: Empty() diverged", i)
		}
		if st.Empty() {
			continue
		}
		if got.Tag.Cmp(st.Tag) != 0 || got.Mask.Cmp(st.Mask) != 0 {
			t.Fatalf("case %d: round trip diverged: (%v,%v) != (%v,%v)", i, got.Tag, got.Mask, st.Tag, st.Mask)
		}
	}
}

func TestTournamentStateRejectsGarbage(t *testing.T) {
	var st TournamentState
	for _, raw := range [][]byte{
		{1, 2, 3},                   // truncated length prefix
		{0, 0, 0, 9, 1, 2},          // length exceeds payload
		{0, 0, 0, 1, 5, 0, 0, 0, 1}, // second residue truncated
	} {
		if err := st.UnmarshalBinary(raw); err == nil {
			t.Fatalf("decoded garbage %v without error", raw)
		}
	}
	if err := (&TournamentState{Tag: big.NewInt(3)}).marshalMustFail(); err == nil {
		t.Fatal("tag without mask must not marshal")
	}
}

func (t *TournamentState) marshalMustFail() error {
	_, err := t.MarshalBinary()
	return err
}
