package secure

import (
	"fmt"
	"math/big"
	"sync"

	"sdb/internal/bigmod"
)

// Batch token application.
//
// ApplyToken pays per row for work that is constant per token: reducing
// and multiplying by P, and (for negative Q) a full ModInverse of the
// helper power. A TokenApplier hoists the per-token work — the Montgomery
// context, ToMont(P), |Q| and its sign — and applies the token to many
// (ve, w) rows with:
//
//   - w^|Q| via the fixed-base comb evaluated entirely in the Montgomery
//     domain (bigmod.ExpCachedMont), no conversions on the warm path;
//   - the asymmetric Montgomery trick for the multiplies: montMul of a
//     Montgomery-form operand by a normal-form operand yields the
//     normal-form product in ONE REDC, so a non-Base row costs exactly
//     two REDCs after the exponentiation (⊙ve, then ⊙P) and a Base row
//     one, with zero trial divisions;
//   - Montgomery's batch-inversion trick for negative Q: one ModInverse
//     plus three REDCs per row instead of one ModInverse per row.
//
// An applier is immutable after construction and safe for concurrent use;
// scratch memory comes from an internal pool, so the engine's parallel
// chunk workers share one applier per compiled expression.

// TokenApplier applies one fixed token to many (ve, w) pairs.
type TokenApplier struct {
	tok  Token
	n    *big.Int
	ctx  *bigmod.MontCtx // nil for even/degenerate moduli → scalar fallback
	pM   []big.Word      // ToMont(P)
	qAbs *big.Int        // |Q|
	qNeg bool
	pool sync.Pool // *applyScratch
}

type applyScratch struct {
	ms   *bigmod.MontScratch
	tmp  []big.Word // k limbs
	tmp2 []big.Word // k limbs
	buf  []big.Word // grown on demand (batch prefix products)
}

// NewTokenApplier hoists the per-token work for n. The token and modulus
// are captured by value/reference and must not be mutated afterwards.
func NewTokenApplier(t Token, n *big.Int) *TokenApplier {
	a := &TokenApplier{tok: t.Clone(), n: n, qNeg: t.Q.Sign() < 0}
	a.qAbs = a.tok.Q
	if a.qNeg {
		a.qAbs = new(big.Int).Neg(a.tok.Q)
	}
	if n != nil && n.Sign() > 0 {
		a.ctx = bigmod.MontCtxFor(n)
	}
	if a.ctx != nil {
		a.pM = a.ctx.ToMont(a.ctx.NewScratch(), t.P)
	}
	return a
}

// N returns the modulus the applier operates over.
func (a *TokenApplier) N() *big.Int { return a.n }

// Token returns (a copy of) the applier's token.
func (a *TokenApplier) Token() Token { return a.tok.Clone() }

func (a *TokenApplier) scratch() *applyScratch {
	if s, ok := a.pool.Get().(*applyScratch); ok {
		return s
	}
	k := a.ctx.Words()
	return &applyScratch{
		ms:   a.ctx.NewScratch(),
		tmp:  make([]big.Word, k),
		tmp2: make([]big.Word, k),
	}
}

func (s *applyScratch) grow(k int) []big.Word {
	if cap(s.buf) < k {
		s.buf = make([]big.Word, k)
	}
	return s.buf[:k]
}

// errNotInvertible wraps the non-invertible-helper failure so batch and
// scalar paths report the same error class.
func errNotInvertible() error {
	return fmt.Errorf("secure: helper not invertible under negative-exponent token: %w",
		bigmod.ErrNotInvertible)
}

// finish computes the token output from yM = ToMont(w^Q) and ve, entirely
// with asymmetric (one-REDC) multiplies. The result is normal-domain.
func (a *TokenApplier) finish(s *applyScratch, yM []big.Word, ve *big.Int) *big.Int {
	if a.tok.Base {
		// out = P·y: yM ⊙ P with P normal-form leaves the product in
		// the normal domain.
		a.ctx.MulBig(s.ms, s.tmp, yM, a.tok.P)
	} else {
		// t = yM ⊙ ve = y·ve (normal); out = pM ⊙ t = P·y·ve (normal).
		a.ctx.MulBig(s.ms, s.tmp, yM, ve)
		a.ctx.MulTo(s.ms, s.tmp2, a.pM, s.tmp)
		s.tmp, s.tmp2 = s.tmp2, s.tmp
	}
	out := new(big.Int).SetBits(append([]big.Word(nil), s.tmp...))
	return out
}

// Apply transforms a single row: out = P·ve·w^Q mod n (P·w^Q for Base
// tokens). It errors where ApplyToken returns nil (negative Q with a
// non-invertible helper).
func (a *TokenApplier) Apply(ve, w *big.Int) (*big.Int, error) {
	if a.ctx == nil {
		out := ApplyToken(a.tok, ve, w, a.n)
		if out == nil {
			return nil, errNotInvertible()
		}
		return out, nil
	}
	s := a.scratch()
	defer a.pool.Put(s)
	yM := bigmod.ExpCachedMont(a.ctx, s.ms, w, a.qAbs, a.n)
	if a.qNeg {
		y := a.ctx.FromMont(s.ms, yM)
		if y.ModInverse(y, a.n) == nil {
			return nil, errNotInvertible()
		}
		yM = a.ctx.ToMont(s.ms, y)
	}
	return a.finish(s, yM, ve), nil
}

// ApplyBatch transforms rows i ∈ [0, len(ws)): out[i] = P·ves[i]·ws[i]^Q
// mod n. For Base tokens ves may be nil. Negative-Q tokens amortize the
// helper inversions across the whole batch (one ModInverse total); if ANY
// helper is non-invertible the batch errors, exactly as each scalar
// application would.
func (a *TokenApplier) ApplyBatch(ves, ws []*big.Int) ([]*big.Int, error) {
	if len(ws) == 0 {
		return nil, nil
	}
	if !a.tok.Base && len(ves) != len(ws) {
		return nil, fmt.Errorf("secure: batch length mismatch: %d shares, %d helpers", len(ves), len(ws))
	}
	out := make([]*big.Int, len(ws))
	if a.ctx == nil {
		for i, w := range ws {
			var ve *big.Int
			if !a.tok.Base {
				ve = ves[i]
			}
			r := ApplyToken(a.tok, ve, w, a.n)
			if r == nil {
				return nil, errNotInvertible()
			}
			out[i] = r
		}
		return out, nil
	}
	s := a.scratch()
	defer a.pool.Put(s)
	k := a.ctx.Words()
	// Phase 1: yM[i] = ToMont(ws[i]^|Q|), comb-evaluated in-domain.
	yMs := make([][]big.Word, len(ws))
	for i, w := range ws {
		yMs[i] = bigmod.ExpCachedMont(a.ctx, s.ms, w, a.qAbs, a.n)
	}
	if a.qNeg {
		if err := a.batchInvMont(s, yMs, k); err != nil {
			return nil, err
		}
	}
	// Phase 2: two one-REDC multiplies per row (one for Base tokens).
	for i := range ws {
		var ve *big.Int
		if !a.tok.Base {
			ve = ves[i]
		}
		out[i] = a.finish(s, yMs[i], ve)
	}
	return out, nil
}

// batchInvMont replaces each Montgomery residue yMs[i] with its modular
// inverse (still in the domain) using Montgomery's batch trick run
// entirely on REDC: prefix products in-domain, ONE ModInverse of the
// total, then a backward sweep — 3 REDCs per element + 1 inversion,
// versus one ModInverse per element on the scalar path.
func (a *TokenApplier) batchInvMont(s *applyScratch, yMs [][]big.Word, k int) error {
	n := len(yMs)
	// prefix[i] = ToMont(y_0·…·y_{i-1}); prefix[0] = ToMont(1).
	prefix := s.grow((n + 1) * k)
	copy(prefix[:k], a.ctx.One())
	for i := 0; i < n; i++ {
		a.ctx.MulTo(s.ms, prefix[(i+1)*k:(i+2)*k], prefix[i*k:(i+1)*k], yMs[i])
	}
	total := a.ctx.FromMont(s.ms, prefix[n*k:(n+1)*k])
	if total.ModInverse(total, a.n) == nil {
		return errNotInvertible()
	}
	// accM = ToMont((y_i·…·y_{n-1})⁻¹), walking i downward:
	// y_i⁻¹ = acc·prefix_i, then acc ← acc·y_i.
	accM := a.ctx.ToMont(s.ms, total)
	for i := n - 1; i >= 0; i-- {
		a.ctx.MulTo(s.ms, s.tmp2, accM, yMs[i])
		a.ctx.MulTo(s.ms, yMs[i], accM, prefix[i*k:(i+1)*k])
		accM, s.tmp2 = s.tmp2, accM
	}
	return nil
}

// ApplyTokenBatch is the package-level batch entry point: it builds a
// one-shot applier and transforms the whole column slice. Callers with a
// long-lived token (compiled expressions, rotation statements) should
// hold a TokenApplier instead to amortize the setup across chunks.
func ApplyTokenBatch(t Token, ves, ws []*big.Int, n *big.Int) ([]*big.Int, error) {
	return NewTokenApplier(t, n).ApplyBatch(ves, ws)
}

// EncRequest is one share to mint on the encrypt side: a domain-encoded
// residue to divide by the item key of (Rid, Key). Batching requests lets
// the proxy amortize the per-share ModInverse across an INSERT chunk.
type EncRequest struct {
	Enc *big.Int
	Rid RowID
	Key ColumnKey
}

// NewEncRequest builds the request encrypting signed value v (Def. 2
// numerator, domain-encoded with the same bound check as Encrypt).
func (s *Secret) NewEncRequest(v *big.Int, r RowID, ck ColumnKey) (EncRequest, error) {
	enc, err := s.domain.Encode(v)
	if err != nil {
		return EncRequest{}, err
	}
	return EncRequest{Enc: enc, Rid: r, Key: ck}, nil
}

// NewMaskEncRequest builds the request encrypting a comparison mask,
// with EncryptMask's bound check (masks bypass the signed domain).
func (s *Secret) NewMaskEncRequest(mask *big.Int, r RowID, ck ColumnKey) (EncRequest, error) {
	if mask.Sign() <= 0 || mask.Cmp(s.maskBound()) >= 0 {
		return EncRequest{}, fmt.Errorf("secure: mask %s outside [1, 2^%d)", mask, s.maskWidth)
	}
	return EncRequest{Enc: mask, Rid: r, Key: ck}, nil
}

// EncryptBatch mints all requested shares with ONE modular inversion:
// item keys are derived per request (through the fixed-base cache on g),
// then inverted together with Montgomery's batch trick. Semantically
// identical to calling Encrypt/EncryptMask per request; an error means
// some item key shared a factor with n (degenerate column key), the same
// condition the scalar paths report per share.
func (s *Secret) EncryptBatch(reqs []EncRequest) ([]*big.Int, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	vks := make([]*big.Int, len(reqs))
	for i, rq := range reqs {
		vks[i] = s.ItemKey(rq.Rid, rq.Key)
	}
	invs, err := bigmod.BatchInv(vks, s.params.N)
	if err != nil {
		return nil, fmt.Errorf("secure: item key not invertible (degenerate column key?): %w", err)
	}
	out := make([]*big.Int, len(reqs))
	for i, rq := range reqs {
		out[i] = bigmod.Mul(rq.Enc, invs[i], s.params.N)
	}
	return out, nil
}

// FlatDecryptor decrypts shares under one flat key (x = 0) with the key's
// m pre-converted to the Montgomery domain: each row is a single REDC
// (asymmetric multiply) instead of a big.Int Mul+Mod. Immutable and safe
// for concurrent use — the proxy caches one per output column in its
// (shared, plan-cached) select plans.
type FlatDecryptor struct {
	domain *bigmod.Domain
	n      *big.Int
	ck     ColumnKey
	ctx    *bigmod.MontCtx
	mM     []big.Word // ToMont(ck.M)
	pool   sync.Pool  // *bigmod.MontScratch
}

// NewFlatDecryptor precomputes the Montgomery form of ck.M. It errors on
// non-flat keys, like DecryptFlat.
func (s *Secret) NewFlatDecryptor(ck ColumnKey) (*FlatDecryptor, error) {
	if ck.X.Sign() != 0 {
		return nil, fmt.Errorf("secure: DecryptFlat needs a flat key, got x=%s", ck.X)
	}
	d := &FlatDecryptor{domain: s.domain, n: s.params.N, ck: ck, ctx: bigmod.MontCtxFor(s.params.N)}
	if d.ctx != nil {
		d.mM = d.ctx.ToMont(d.ctx.NewScratch(), ck.M)
	}
	return d, nil
}

// Decrypt decodes one flat share: Decode(ve·m mod n).
func (d *FlatDecryptor) Decrypt(ve *big.Int) *big.Int {
	if d.ctx == nil {
		return d.domain.Decode(bigmod.Mul(ve, d.ck.M, d.n))
	}
	ms, ok := d.pool.Get().(*bigmod.MontScratch)
	if !ok {
		ms = d.ctx.NewScratch()
	}
	z := make([]big.Word, d.ctx.Words())
	d.ctx.MulBig(ms, z, d.mM, ve)
	d.pool.Put(ms)
	return d.domain.Decode(new(big.Int).SetBits(z))
}
