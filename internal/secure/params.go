// Package secure implements the SDB secret-sharing scheme and its
// data-interoperable secure operators (He et al., PVLDB 2015, §2).
//
// Every sensitive value v is split into two multiplicative shares:
//
//	item key   vk = gen(r, ⟨m,x⟩) = m · g^(r·x mod φ(n)) mod n   (Def. 1)
//	encrypted  ve = E(v, vk)      = v · vk⁻¹ mod n                (Def. 2)
//	decrypt    v  = D(ve, vk)     = ve · vk mod n                 (Eq. 4)
//
// The data owner (DO) keeps g, φ(n) and the per-column keys ⟨m,x⟩; the
// service provider (SP) stores ve together with a per-row helper
// w = g^r mod n that lets the SP execute key-transformation tokens without
// ever learning g, φ(n) or any column key. All operators consume and
// produce shares in this one encrypted space, which is the paper's
// "data interoperability" property.
package secure

import (
	"errors"
	"fmt"
	"math/big"

	"sdb/internal/bigmod"
)

// Defaults for Setup. The paper (§2.1 fn. 3) uses 1024-bit primes, i.e. a
// 2048-bit modulus; tests and benchmarks use narrower moduli for speed and
// sweep the width in the experiment harness.
const (
	DefaultModulusBits = 2048
	DefaultValueBits   = 62 // application values fit int64
	DefaultMaskBits    = 80 // multiplicative headroom for comparison masks
)

var one = big.NewInt(1)

// Params is the public part of the scheme: the RSA modulus n. The SP sees
// only this.
type Params struct {
	N *big.Int
}

// Secret holds the DO-only key material: the prime factorisation of n, the
// secret generator g, φ(n), and the signed-value domain used to embed
// application integers into Z_n.
type Secret struct {
	params    *Params
	p1, p2    *big.Int
	phi       *big.Int
	g         *big.Int
	domain    *bigmod.Domain
	maskWidth int
}

// Setup generates fresh key material: an RSA modulus of modulusBits bits, a
// random generator g co-prime with n, and a signed domain hosting
// valueBits-wide values with maskBits of comparison-mask headroom.
func Setup(modulusBits, valueBits, maskBits int) (*Secret, error) {
	if modulusBits < 16 {
		return nil, fmt.Errorf("secure: modulus width %d too small", modulusBits)
	}
	p1, err := bigmod.RandPrime(modulusBits / 2)
	if err != nil {
		return nil, err
	}
	p2, err := bigmod.RandPrime(modulusBits - modulusBits/2)
	if err != nil {
		return nil, err
	}
	for p1.Cmp(p2) == 0 {
		if p2, err = bigmod.RandPrime(modulusBits - modulusBits/2); err != nil {
			return nil, err
		}
	}
	n := new(big.Int).Mul(p1, p2)
	g, err := bigmod.RandInvertible(n)
	if err != nil {
		return nil, err
	}
	return newSecret(p1, p2, g, valueBits, maskBits)
}

// SetupFromPrimes builds key material from explicit primes and generator.
// It exists for deterministic tests such as the paper's Figure 1 worked
// example (ρ1=5, ρ2=7, n=35, g=2).
func SetupFromPrimes(p1, p2, g *big.Int, valueBits, maskBits int) (*Secret, error) {
	if !p1.ProbablyPrime(32) || !p2.ProbablyPrime(32) {
		return nil, errors.New("secure: factors must be prime")
	}
	return newSecret(p1, p2, g, valueBits, maskBits)
}

func newSecret(p1, p2, g *big.Int, valueBits, maskBits int) (*Secret, error) {
	n := new(big.Int).Mul(p1, p2)
	if !bigmod.Coprime(g, n) {
		return nil, errors.New("secure: g must be co-prime with n")
	}
	phi := new(big.Int).Mul(
		new(big.Int).Sub(p1, one),
		new(big.Int).Sub(p2, one),
	)
	domain, err := bigmod.NewDomain(n, valueBits, maskBits)
	if err != nil {
		return nil, err
	}
	return &Secret{
		params:    &Params{N: n},
		p1:        new(big.Int).Set(p1),
		p2:        new(big.Int).Set(p2),
		phi:       phi,
		g:         new(big.Int).Set(g),
		domain:    domain,
		maskWidth: maskBits,
	}, nil
}

// Params returns the public parameters (safe to ship to the SP).
func (s *Secret) Params() *Params { return s.params }

// N returns the public modulus.
func (s *Secret) N() *big.Int { return s.params.N }

// Domain returns the signed-value embedding for this modulus.
func (s *Secret) Domain() *bigmod.Domain { return s.domain }

// maskBound returns the exclusive upper bound for comparison masks,
// 2^maskWidth; the domain reserved exactly this much multiplicative
// headroom at Setup, so (A−B)·R never wraps past n/2.
func (s *Secret) maskBound() *big.Int {
	return new(big.Int).Lsh(one, uint(s.maskWidth))
}
