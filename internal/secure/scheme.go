package secure

import (
	"fmt"
	"math/big"

	"sdb/internal/bigmod"
)

// RowID is the per-row random identifier r drawn by the DO at upload time
// (paper §2.1). It seeds item-key generation and is stored at the SP only
// in SIES-encrypted form plus as the helper w = g^r mod n.
type RowID struct {
	R *big.Int
}

// NewRowID draws a random row id in [1, n).
func (s *Secret) NewRowID() (RowID, error) {
	r, err := bigmod.Rand(s.params.N)
	if err != nil {
		return RowID{}, err
	}
	return RowID{R: r}, nil
}

// RowHelper computes w = g^r mod n, the per-row public helper stored at the
// SP. Tokens instruct the SP to raise w to secret-derived exponents; since
// vk = m·w^x, the helper lets the SP re-key shares without knowing g.
func (s *Secret) RowHelper(r RowID) *big.Int {
	return bigmod.ExpCached(s.g, r.R, s.params.N)
}

// ItemKey implements gen(r, ⟨m,x⟩) = m · g^(r·x mod φ(n)) mod n (Def. 1).
// Only the DO can evaluate it: it needs g and φ(n).
func (s *Secret) ItemKey(r RowID, ck ColumnKey) *big.Int {
	e := new(big.Int).Mul(r.R, ck.X)
	e.Mod(e, s.phi)
	// g is the hottest fixed base in the system: every encrypt and decrypt
	// derives an item key from it.
	ik := bigmod.ExpCached(s.g, e, s.params.N)
	return bigmod.Mul(ck.M, ik, s.params.N)
}

// Encrypt implements E(v, vk) = v·vk⁻¹ mod n (Def. 2) for a signed
// application value v under row r and column key ck.
func (s *Secret) Encrypt(v *big.Int, r RowID, ck ColumnKey) (*big.Int, error) {
	enc, err := s.domain.Encode(v)
	if err != nil {
		return nil, err
	}
	vk := s.ItemKey(r, ck)
	inv, err := bigmod.Inv(vk, s.params.N)
	if err != nil {
		return nil, fmt.Errorf("secure: item key not invertible (degenerate column key?): %w", err)
	}
	return bigmod.Mul(enc, inv, s.params.N), nil
}

// EncryptInt64 is Encrypt for machine integers.
func (s *Secret) EncryptInt64(v int64, r RowID, ck ColumnKey) (*big.Int, error) {
	return s.Encrypt(big.NewInt(v), r, ck)
}

// Decrypt implements D(ve, vk) = ve·vk mod n (Eq. 4) and decodes the result
// back into the signed domain.
func (s *Secret) Decrypt(ve *big.Int, r RowID, ck ColumnKey) *big.Int {
	vk := s.ItemKey(r, ck)
	return s.domain.Decode(bigmod.Mul(ve, vk, s.params.N))
}

// DecryptInt64 decrypts and narrows to int64, failing loudly if the
// plaintext does not fit (which indicates share corruption).
func (s *Secret) DecryptInt64(ve *big.Int, r RowID, ck ColumnKey) (int64, error) {
	v := s.Decrypt(ve, r, ck)
	if !v.IsInt64() {
		return 0, fmt.Errorf("secure: decrypted value %s overflows int64", v)
	}
	return v.Int64(), nil
}

// DecryptFlat decrypts a share produced under a flat key (x = 0), such as a
// SUM aggregate or a deterministic tag: the item key is m for every row, so
// no row id is needed.
func (s *Secret) DecryptFlat(ve *big.Int, ck ColumnKey) (*big.Int, error) {
	if ck.X.Sign() != 0 {
		return nil, fmt.Errorf("secure: DecryptFlat needs a flat key, got x=%s", ck.X)
	}
	return s.domain.Decode(bigmod.Mul(ve, ck.M, s.params.N)), nil
}

// NewMaskValue draws the random positive multiplier used by the comparison
// protocol: uniform in [1, 2^maskWidth). Multiplying a difference by it
// hides the magnitude while preserving sign and zero-ness.
func (s *Secret) NewMaskValue() (*big.Int, error) {
	m, err := bigmod.Rand(s.maskBound())
	if err != nil {
		return nil, err
	}
	return m, nil
}

// EncryptMask encrypts a comparison mask under row r and column key ck.
// Masks live in the mask headroom budget, not the signed value domain, so
// they bypass the domain bound check; they must still be positive and
// below the mask bound so that (A−B)·mask cannot wrap past n/2.
func (s *Secret) EncryptMask(mask *big.Int, r RowID, ck ColumnKey) (*big.Int, error) {
	if mask.Sign() <= 0 || mask.Cmp(s.maskBound()) >= 0 {
		return nil, fmt.Errorf("secure: mask %s outside [1, 2^%d)", mask, s.maskWidth)
	}
	vk := s.ItemKey(r, ck)
	inv, err := bigmod.Inv(vk, s.params.N)
	if err != nil {
		return nil, fmt.Errorf("secure: item key not invertible: %w", err)
	}
	return bigmod.Mul(mask, inv, s.params.N), nil
}
