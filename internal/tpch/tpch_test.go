package tpch

import (
	"fmt"
	"testing"

	"sdb/internal/baseline"
	"sdb/internal/engine"
	"sdb/internal/proxy"
	"sdb/internal/secure"
	"sdb/internal/sqlparser"
	"sdb/internal/storage"
	"sdb/internal/types"
)

func TestAllQueriesParse(t *testing.T) {
	for _, q := range Queries() {
		if _, err := sqlparser.ParseSelect(q.SQL); err != nil {
			t.Errorf("Q%d does not parse: %v", q.Num, err)
		}
	}
	if len(Queries()) != 22 {
		t.Errorf("expected 22 queries, got %d", len(Queries()))
	}
}

// TestCoverageMatrix reproduces experiment E2: SDB natively supports all 22
// queries; the onion baseline supports only a handful (the paper reports 4
// for CryptDB). The exact count depends on the sensitive-column choice; the
// shape — a small fraction versus all — is the claim under test.
func TestCoverageMatrix(t *testing.T) {
	sdbCount, cryptdbCount := 0, 0
	for _, q := range Queries() {
		sel, err := sqlparser.ParseSelect(q.SQL)
		if err != nil {
			t.Fatalf("Q%d: %v", q.Num, err)
		}
		ops, err := baseline.AnalyzeQuery(sel, IsSensitive)
		if err != nil {
			t.Fatalf("Q%d analyze: %v", q.Num, err)
		}
		if baseline.SDBSupports(ops) {
			sdbCount++
		}
		if baseline.CryptDBSupports(ops) {
			cryptdbCount++
		} else {
			t.Logf("Q%-2d unsupported by onion baseline (ops: %s)", q.Num, ops)
		}
	}
	if sdbCount != 22 {
		t.Errorf("SDB coverage = %d/22, want 22/22", sdbCount)
	}
	if cryptdbCount > 8 {
		t.Errorf("onion-baseline coverage = %d/22; expected a small fraction (paper: 4)", cryptdbCount)
	}
	t.Logf("coverage: SDB %d/22, onion baseline %d/22", sdbCount, cryptdbCount)
}

// plaintextSQL strips SENSITIVE so the same DDL loads a plaintext engine.
func plaintextSQL(sql string) string {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return sql
	}
	ct, ok := stmt.(*sqlparser.CreateTable)
	if !ok {
		return sql
	}
	for i := range ct.Cols {
		ct.Cols[i].Type.Sensitive = false
	}
	return ct.String()
}

// loadBoth generates one dataset into an SDB deployment and a plaintext
// deployment for differential testing. The plaintext side also runs behind
// a proxy (over a schema with no SENSITIVE columns) so both sides share the
// proxy's scale-aware literal rewriting; only the encryption differs.
func loadBoth(t testing.TB, sf float64) (*proxy.Proxy, *proxy.Proxy) {
	t.Helper()
	secret, err := secure.Setup(512, 62, 80)
	if err != nil {
		t.Fatal(err)
	}
	spEngine := engine.New(storage.NewCatalog(), secret.N())
	p, err := proxy.New(secret, spEngine)
	if err != nil {
		t.Fatal(err)
	}
	plainEngine := engine.New(storage.NewCatalog(), nil)
	plain, err := proxy.New(secret, plainEngine)
	if err != nil {
		t.Fatal(err)
	}

	for _, ddl := range CreateStatements() {
		if _, err := p.Exec(ddl); err != nil {
			t.Fatalf("proxy DDL: %v", err)
		}
		if _, err := plain.Exec(plaintextSQL(ddl)); err != nil {
			t.Fatalf("plain DDL: %v", err)
		}
	}
	cfg := Config{ScaleFactor: sf, Seed: 42}
	if err := Generate(cfg, func(sql string) error {
		if _, err := p.Exec(sql); err != nil {
			return fmt.Errorf("proxy load: %w", err)
		}
		if _, err := plain.Exec(sql); err != nil {
			return fmt.Errorf("plain load: %w", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return p, plain
}

// TestRunnableQueriesDifferential executes every runnable TPC-H query both
// through the full SDB stack (encrypt → rewrite → secure execute → decrypt)
// and on a plaintext engine, and requires identical results. AVG columns
// are compared with the proxy's two extra digits of precision.
func TestRunnableQueriesDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential TPC-H run is slow")
	}
	p, plain := loadBoth(t, 0.0004)

	for _, q := range RunnableQueries() {
		q := q
		t.Run(fmt.Sprintf("Q%d", q.Num), func(t *testing.T) {
			encRes, err := p.Exec(q.SQL)
			if err != nil {
				t.Fatalf("SDB: %v", err)
			}
			plainRes, err := plain.Exec(q.SQL)
			if err != nil {
				t.Fatalf("plaintext: %v", err)
			}
			comparePlans(t, q.Num, encRes, plainRes)
		})
	}
}

func comparePlans(t *testing.T, num int, enc, plain *proxy.Result) {
	t.Helper()
	if len(enc.Rows) != len(plain.Rows) {
		t.Fatalf("Q%d: SDB %d rows, plaintext %d rows", num, len(enc.Rows), len(plain.Rows))
	}
	for i := range enc.Rows {
		for c := range enc.Rows[i] {
			ev, pv := enc.Rows[i][c], plain.Rows[i][c]
			if ev.IsNull() != pv.IsNull() {
				t.Fatalf("Q%d row %d col %d: null mismatch (%v vs %v)", num, i, c, ev, pv)
			}
			if ev.IsNull() {
				continue
			}
			switch pv.K {
			case types.KindString:
				if ev.S != pv.S {
					t.Fatalf("Q%d row %d col %d: %q vs %q", num, i, c, ev.S, pv.S)
				}
			default:
				if ev.I != pv.I {
					t.Fatalf("Q%d row %d col %d: %d vs %d", num, i, c, ev.I, pv.I)
				}
			}
		}
	}
}
