package tpch

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// Config controls the generator. ScaleFactor 1.0 corresponds to the
// official 6M-row lineitem; experiments here use 0.0005–0.01.
type Config struct {
	ScaleFactor float64
	Seed        int64
}

// Sizes returns the per-table row counts at the configured scale.
func (c Config) Sizes() map[string]int {
	sf := c.ScaleFactor
	atLeast := func(n int) int {
		if n < 1 {
			return 1
		}
		return n
	}
	return map[string]int{
		"region":   5,
		"nation":   25,
		"supplier": atLeast(int(10000 * sf)),
		"customer": atLeast(int(150000 * sf)),
		"part":     atLeast(int(200000 * sf)),
		"partsupp": atLeast(int(800000 * sf)),
		"orders":   atLeast(int(1500000 * sf)),
		"lineitem": atLeast(int(6000000 * sf)),
	}
}

// Execer consumes generated SQL statements; both the SDB proxy and a
// plaintext engine satisfy it via small adapters.
type Execer func(sql string) error

var (
	regions   = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nations   = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	segments  = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priority  = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	partTypes = []string{"STANDARD ANODIZED TIN", "SMALL PLATED COPPER", "MEDIUM POLISHED BRASS", "ECONOMY BURNISHED NICKEL", "PROMO BRUSHED STEEL", "LARGE BURNISHED COPPER"}
	brands    = []string{"Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55"}
	container = []string{"SM CASE", "LG BOX", "MED BAG", "JUMBO JAR", "WRAP PACK"}
	flags     = []string{"R", "A", "N"}
)

// Generate produces the whole dataset, streaming INSERT statements in
// batches of batchRows to the execer. It is deterministic in Config.Seed.
func Generate(cfg Config, exec Execer) error {
	if cfg.ScaleFactor <= 0 {
		return fmt.Errorf("tpch: scale factor must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := cfg.Sizes()
	const batchRows = 200

	// region
	var rows []string
	for i, name := range regions {
		rows = append(rows, fmt.Sprintf("(%d, '%s')", i, name))
	}
	if err := flush(exec, "region", "", rows); err != nil {
		return err
	}

	// nation
	rows = rows[:0]
	for i, name := range nations {
		rows = append(rows, fmt.Sprintf("(%d, '%s', %d)", i, name, i%5))
	}
	if err := flush(exec, "nation", "", rows); err != nil {
		return err
	}

	// supplier
	rows = rows[:0]
	for i := 0; i < sizes["supplier"]; i++ {
		rows = append(rows, fmt.Sprintf("(%d, 'Supplier#%05d', %d, %s)",
			i+1, i+1, rng.Intn(25), money(rng, -99999, 999999)))
		if len(rows) >= batchRows {
			if err := flush(exec, "supplier", "", rows); err != nil {
				return err
			}
			rows = rows[:0]
		}
	}
	if err := flush(exec, "supplier", "", rows); err != nil {
		return err
	}

	// customer
	rows = rows[:0]
	for i := 0; i < sizes["customer"]; i++ {
		rows = append(rows, fmt.Sprintf("(%d, 'Customer#%06d', %d, '%s', %s)",
			i+1, i+1, rng.Intn(25), segments[rng.Intn(len(segments))], money(rng, -99999, 999999)))
		if len(rows) >= batchRows {
			if err := flush(exec, "customer", "", rows); err != nil {
				return err
			}
			rows = rows[:0]
		}
	}
	if err := flush(exec, "customer", "", rows); err != nil {
		return err
	}

	// part
	partPrice := make([]int64, sizes["part"]+1)
	rows = rows[:0]
	for i := 0; i < sizes["part"]; i++ {
		price := int64(90000 + rng.Intn(110000)) // 900.00–2000.00
		partPrice[i+1] = price
		rows = append(rows, fmt.Sprintf("(%d, 'part %s %d', '%s', '%s', %d, '%s', %d.%02d)",
			i+1, strings.ToLower(partTypes[rng.Intn(len(partTypes))]), i+1,
			brands[rng.Intn(len(brands))], partTypes[rng.Intn(len(partTypes))],
			1+rng.Intn(50), container[rng.Intn(len(container))],
			price/100, price%100))
		if len(rows) >= batchRows {
			if err := flush(exec, "part", "", rows); err != nil {
				return err
			}
			rows = rows[:0]
		}
	}
	if err := flush(exec, "part", "", rows); err != nil {
		return err
	}

	// partsupp
	rows = rows[:0]
	for i := 0; i < sizes["partsupp"]; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %d, %d, %s)",
			1+i%sizes["part"], 1+rng.Intn(sizes["supplier"]), 1+rng.Intn(9999),
			money(rng, 100, 100000)))
		if len(rows) >= batchRows {
			if err := flush(exec, "partsupp", "", rows); err != nil {
				return err
			}
			rows = rows[:0]
		}
	}
	if err := flush(exec, "partsupp", "", rows); err != nil {
		return err
	}

	// orders + lineitem
	epoch := time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)
	span := int(time.Date(1998, 8, 2, 0, 0, 0, 0, time.UTC).Sub(epoch).Hours() / 24)
	var orderRows, lineRows []string
	linesPerOrder := sizes["lineitem"] / sizes["orders"]
	if linesPerOrder < 1 {
		linesPerOrder = 1
	}
	for o := 0; o < sizes["orders"]; o++ {
		odate := epoch.AddDate(0, 0, rng.Intn(span))
		status := flags[rng.Intn(3)]
		var total int64
		nLines := 1 + rng.Intn(2*linesPerOrder)
		lines := make([]string, 0, nLines)
		for l := 0; l < nLines; l++ {
			partKey := 1 + rng.Intn(sizes["part"])
			qty := 1 + rng.Intn(50)
			extended := int64(qty) * partPrice[partKey] / 10 // keep magnitudes moderate
			discount := int64(rng.Intn(11))                  // 0.00–0.10
			tax := int64(rng.Intn(9))                        // 0.00–0.08
			ship := odate.AddDate(0, 0, 1+rng.Intn(121))
			commit := odate.AddDate(0, 0, 30+rng.Intn(61))
			receipt := ship.AddDate(0, 0, 1+rng.Intn(30))
			total += extended
			lines = append(lines, fmt.Sprintf("(%d, %d, %d, %d, %d, %d.%02d, 0.%02d, 0.%02d, '%s', '%s', '%s', '%s', '%s', '%s')",
				o+1, partKey, 1+rng.Intn(sizes["supplier"]), l+1, qty,
				extended/100, extended%100, discount, tax,
				flags[rng.Intn(3)], flags[rng.Intn(2)],
				ship.Format("2006-01-02"), commit.Format("2006-01-02"), receipt.Format("2006-01-02"),
				shipModes[rng.Intn(len(shipModes))]))
		}
		orderRows = append(orderRows, fmt.Sprintf("(%d, %d, '%s', %d.%02d, '%s', '%s', %d)",
			o+1, 1+rng.Intn(sizes["customer"]), status, total/100, total%100,
			odate.Format("2006-01-02"), priority[rng.Intn(len(priority))], rng.Intn(2)))
		lineRows = append(lineRows, lines...)
		if len(orderRows) >= batchRows {
			if err := flush(exec, "orders", "", orderRows); err != nil {
				return err
			}
			orderRows = orderRows[:0]
		}
		if len(lineRows) >= batchRows {
			if err := flush(exec, "lineitem", "", lineRows); err != nil {
				return err
			}
			lineRows = lineRows[:0]
		}
	}
	if err := flush(exec, "orders", "", orderRows); err != nil {
		return err
	}
	return flush(exec, "lineitem", "", lineRows)
}

// money renders a random scaled-decimal literal in [lo, hi] cents.
func money(rng *rand.Rand, lo, hi int64) string {
	v := lo + rng.Int63n(hi-lo+1)
	neg := ""
	if v < 0 {
		neg, v = "-", -v
	}
	return fmt.Sprintf("%s%d.%02d", neg, v/100, v%100)
}

func flush(exec Execer, table, cols string, rows []string) error {
	if len(rows) == 0 {
		return nil
	}
	sql := "INSERT INTO " + table + " VALUES " + strings.Join(rows, ", ")
	_ = cols
	return exec(sql)
}
