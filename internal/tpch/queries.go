package tpch

// Query is one TPC-H query expressed in this repository's SQL dialect.
//
// All 22 queries are present for the coverage experiment (E2): each
// captures the original's operator demands on sensitive columns (the
// revenue expressions, encrypted filters, aggregates, group keys). Queries
// whose original uses features outside the dialect (EXISTS, correlated
// subqueries, LEFT JOIN, views) are adapted to the nearest operator-
// equivalent form — what matters for coverage is which secure operators
// they require, not the exact relational plumbing. Queries marked Runnable
// execute end-to-end through the SDB proxy in tests and benchmarks;
// runnable variants use explicit JOIN syntax (hash joins) and split
// client-side ratios into separate aggregates.
type Query struct {
	Num      int
	Name     string
	SQL      string
	Runnable bool
}

// Queries returns the 22-query workload.
func Queries() []Query {
	return []Query{
		{1, "pricing summary report", `
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-09-02'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus`, true},

		{2, "minimum cost supplier", `
SELECT s_name, n_name, ps_supplycost
FROM partsupp
  JOIN supplier ON ps_suppkey = s_suppkey
  JOIN nation ON s_nationkey = n_nationkey
  JOIN part ON ps_partkey = p_partkey
  JOIN (SELECT MIN(ps_supplycost) AS min_cost FROM partsupp) AS mc
    ON ps_supplycost = mc.min_cost
WHERE p_size = 15
ORDER BY s_name`, false},

		{3, "shipping priority", `
SELECT l_orderkey,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer
  JOIN orders ON c_custkey = o_custkey
  JOIN lineitem ON l_orderkey = o_orderkey
WHERE c_mktsegment = 'BUILDING'
  AND o_orderdate < DATE '1995-03-15'
  AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10`, true},

		{4, "order priority checking", `
SELECT o_orderpriority, COUNT(DISTINCT o_orderkey) AS order_count
FROM orders
  JOIN lineitem ON l_orderkey = o_orderkey
WHERE o_orderdate >= DATE '1993-07-01' AND o_orderdate < DATE '1993-10-01'
  AND l_commitdate < l_receiptdate
GROUP BY o_orderpriority
ORDER BY o_orderpriority`, true},

		{5, "local supplier volume", `
SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer
  JOIN orders ON c_custkey = o_custkey
  JOIN lineitem ON l_orderkey = o_orderkey
  JOIN supplier ON l_suppkey = s_suppkey AND c_nationkey = s_nationkey
  JOIN nation ON s_nationkey = n_nationkey
  JOIN region ON n_regionkey = r_regionkey
WHERE r_name = 'ASIA'
  AND o_orderdate >= DATE '1994-01-01' AND o_orderdate < DATE '1995-01-01'
GROUP BY n_name
ORDER BY revenue DESC`, true},

		{6, "forecasting revenue change", `
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24`, true},

		{7, "volume shipping", `
SELECT supp_nation, cust_nation, l_year, SUM(volume) AS revenue
FROM (SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
             year(l_shipdate) AS l_year,
             l_extendedprice * (1 - l_discount) AS volume
      FROM supplier
        JOIN lineitem ON s_suppkey = l_suppkey
        JOIN orders ON o_orderkey = l_orderkey
        JOIN customer ON c_custkey = o_custkey
        JOIN nation n1 ON s_nationkey = n1.n_nationkey
        JOIN nation n2 ON c_nationkey = n2.n_nationkey
      WHERE l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
        AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY')
          OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE'))) AS shipping
GROUP BY supp_nation, cust_nation, l_year
ORDER BY supp_nation, cust_nation, l_year`, false},

		{8, "national market share", `
SELECT o_year,
       SUM(CASE WHEN nation = 'BRAZIL' THEN volume ELSE 0 END) AS brazil_volume,
       SUM(volume) AS total_volume
FROM (SELECT year(o_orderdate) AS o_year,
             l_extendedprice * (1 - l_discount) AS volume,
             n2.n_name AS nation
      FROM part
        JOIN lineitem ON p_partkey = l_partkey
        JOIN supplier ON s_suppkey = l_suppkey
        JOIN orders ON l_orderkey = o_orderkey
        JOIN customer ON o_custkey = c_custkey
        JOIN nation n1 ON c_nationkey = n1.n_nationkey
        JOIN region ON n1.n_regionkey = r_regionkey
        JOIN nation n2 ON s_nationkey = n2.n_nationkey
      WHERE r_name = 'AMERICA' AND p_type = 'ECONOMY ANODIZED STEEL'
        AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31') AS all_nations
GROUP BY o_year
ORDER BY o_year`, false},

		{9, "product type profit measure", `
SELECT nation, o_year, SUM(amount) AS sum_profit
FROM (SELECT n_name AS nation, year(o_orderdate) AS o_year,
             l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity AS amount
      FROM part
        JOIN lineitem ON p_partkey = l_partkey
        JOIN supplier ON s_suppkey = l_suppkey
        JOIN partsupp ON ps_suppkey = l_suppkey AND ps_partkey = l_partkey
        JOIN orders ON o_orderkey = l_orderkey
        JOIN nation ON s_nationkey = n_nationkey
      WHERE p_name LIKE '%green%') AS profit
GROUP BY nation, o_year
ORDER BY nation, o_year DESC`, false},

		{10, "returned item reporting", `
SELECT c_custkey, c_name,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name
FROM customer
  JOIN orders ON c_custkey = o_custkey
  JOIN lineitem ON l_orderkey = o_orderkey
  JOIN nation ON c_nationkey = n_nationkey
WHERE o_orderdate >= DATE '1993-10-01' AND o_orderdate < DATE '1994-01-01'
  AND l_returnflag = 'R'
GROUP BY c_custkey, c_name, c_acctbal, n_name
ORDER BY revenue DESC
LIMIT 20`, true},

		{11, "important stock identification", `
SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value
FROM partsupp
  JOIN supplier ON ps_suppkey = s_suppkey
  JOIN nation ON s_nationkey = n_nationkey
WHERE n_name = 'GERMANY'
GROUP BY ps_partkey
ORDER BY value DESC
LIMIT 50`, true},

		{12, "shipping modes and order priority", `
SELECT l_shipmode,
       SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
            THEN 1 ELSE 0 END) AS high_line_count,
       SUM(CASE WHEN o_orderpriority != '1-URGENT' AND o_orderpriority != '2-HIGH'
            THEN 1 ELSE 0 END) AS low_line_count
FROM orders
  JOIN lineitem ON o_orderkey = l_orderkey
WHERE l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate
  AND l_receiptdate >= DATE '1994-01-01' AND l_receiptdate < DATE '1995-01-01'
GROUP BY l_shipmode
ORDER BY l_shipmode`, true},

		{13, "customer distribution", `
SELECT c_count, COUNT(*) AS custdist
FROM (SELECT c_custkey AS ck, COUNT(o_orderkey) AS c_count
      FROM customer JOIN orders ON c_custkey = o_custkey
      GROUP BY c_custkey) AS c_orders
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC`, true},

		{14, "promotion effect", `
SELECT SUM(CASE WHEN p_type LIKE 'PROMO%'
            THEN l_extendedprice * (1 - l_discount) ELSE 0 END) AS promo_revenue,
       SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
FROM lineitem
  JOIN part ON l_partkey = p_partkey
WHERE l_shipdate >= DATE '1995-09-01' AND l_shipdate < DATE '1995-10-01'`, true},

		{15, "top supplier", `
SELECT s_suppkey, s_name, total_revenue
FROM supplier
  JOIN (SELECT l_suppkey AS sk, SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
        FROM lineitem
        WHERE l_shipdate >= DATE '1996-01-01' AND l_shipdate < DATE '1996-04-01'
        GROUP BY l_suppkey) AS revenue ON s_suppkey = revenue.sk
ORDER BY total_revenue DESC
LIMIT 1`, true},

		{16, "parts/supplier relationship", `
SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) AS supplier_cnt
FROM partsupp
  JOIN part ON p_partkey = ps_partkey
WHERE p_brand != 'Brand#45' AND p_size IN (1, 4, 7, 14, 23, 45, 19, 36, 9, 3)
GROUP BY p_brand, p_type, p_size
ORDER BY supplier_cnt DESC, p_brand, p_type, p_size`, true},

		{17, "small-quantity-order revenue", `
SELECT SUM(l_extendedprice) AS total
FROM lineitem
  JOIN part ON p_partkey = l_partkey
  JOIN (SELECT l_partkey AS pk, AVG(l_quantity) AS avg_qty
        FROM lineitem GROUP BY l_partkey) AS agg ON agg.pk = l_partkey
WHERE p_brand = 'Brand#23' AND p_container = 'MED BAG'
  AND l_quantity < agg.avg_qty`, false},

		{18, "large volume customer", `
SELECT o_orderkey, o_orderdate, SUM(l_quantity) AS total_qty
FROM orders
  JOIN lineitem ON o_orderkey = l_orderkey
GROUP BY o_orderkey, o_orderdate
HAVING SUM(l_quantity) > 300
ORDER BY o_orderdate
LIMIT 100`, true},

		{19, "discounted revenue", `
SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem
  JOIN part ON p_partkey = l_partkey
WHERE (p_brand = 'Brand#12' AND l_quantity BETWEEN 1 AND 11 AND p_size BETWEEN 1 AND 5)
   OR (p_brand = 'Brand#23' AND l_quantity BETWEEN 10 AND 20 AND p_size BETWEEN 1 AND 10)
   OR (p_brand = 'Brand#33' AND l_quantity BETWEEN 20 AND 30 AND p_size BETWEEN 1 AND 15)`, true},

		{20, "potential part promotion", `
SELECT s_name, n_name
FROM supplier
  JOIN nation ON s_nationkey = n_nationkey
  JOIN (SELECT ps_suppkey AS sk, SUM(ps_availqty) AS total_avail
        FROM partsupp GROUP BY ps_suppkey) AS avail ON avail.sk = s_suppkey
WHERE n_name = 'CANADA' AND avail.total_avail > 100
ORDER BY s_name`, true},

		{21, "suppliers who kept orders waiting", `
SELECT s_name, COUNT(*) AS numwait
FROM supplier
  JOIN lineitem ON s_suppkey = l_suppkey
  JOIN orders ON o_orderkey = l_orderkey
  JOIN nation ON s_nationkey = n_nationkey
WHERE o_orderstatus = 'F' AND l_receiptdate > l_commitdate
  AND n_name = 'SAUDI ARABIA'
GROUP BY s_name
ORDER BY numwait DESC, s_name
LIMIT 100`, true},

		{22, "global sales opportunity", `
SELECT cntrycode, COUNT(*) AS numcust, SUM(bal) AS totacctbal
FROM (SELECT substr(c_name, 10, 2) AS cntrycode, c_acctbal AS bal
      FROM customer
      WHERE c_acctbal > 0.00) AS custsale
GROUP BY cntrycode
ORDER BY cntrycode`, true},
	}
}

// RunnableQueries filters to the end-to-end executable subset.
func RunnableQueries() []Query {
	var out []Query
	for _, q := range Queries() {
		if q.Runnable {
			out = append(out, q)
		}
	}
	return out
}
