// Package tpch reimplements a scaled-down TPC-H substrate: the eight-table
// schema (with SDB sensitivity annotations on the money/quantity columns),
// a deterministic dbgen-style data generator, and the 22 queries expressed
// in this repository's SQL dialect. The demo paper's headline claim — all
// 22 TPC-H queries processable by SDB versus 4 by onion systems — is
// reproduced by running the coverage analyzer over these queries
// (experiment E2) and executing a representative subset end-to-end.
package tpch

// CreateStatements returns the CREATE TABLE statements with the SDB
// SENSITIVE annotations used throughout the experiments: every monetary
// amount, account balance, quantity and discount is sensitive; keys, names
// and dates of record are not (matching the paper's demo, where the
// attendee picks the columns to protect — we protect the financials).
func CreateStatements() []string {
	return []string{
		`CREATE TABLE region (
			r_regionkey INT,
			r_name STRING)`,
		`CREATE TABLE nation (
			n_nationkey INT,
			n_name STRING,
			n_regionkey INT)`,
		`CREATE TABLE supplier (
			s_suppkey INT,
			s_name STRING,
			s_nationkey INT,
			s_acctbal DECIMAL(2) SENSITIVE)`,
		`CREATE TABLE customer (
			c_custkey INT,
			c_name STRING,
			c_nationkey INT,
			c_mktsegment STRING,
			c_acctbal DECIMAL(2) SENSITIVE)`,
		`CREATE TABLE part (
			p_partkey INT,
			p_name STRING,
			p_brand STRING,
			p_type STRING,
			p_size INT,
			p_container STRING,
			p_retailprice DECIMAL(2) SENSITIVE)`,
		`CREATE TABLE partsupp (
			ps_partkey INT,
			ps_suppkey INT,
			ps_availqty INT,
			ps_supplycost DECIMAL(2) SENSITIVE)`,
		`CREATE TABLE orders (
			o_orderkey INT,
			o_custkey INT,
			o_orderstatus STRING,
			o_totalprice DECIMAL(2) SENSITIVE,
			o_orderdate DATE,
			o_orderpriority STRING,
			o_shippriority INT)`,
		`CREATE TABLE lineitem (
			l_orderkey INT,
			l_partkey INT,
			l_suppkey INT,
			l_linenumber INT,
			l_quantity INT SENSITIVE,
			l_extendedprice DECIMAL(2) SENSITIVE,
			l_discount DECIMAL(2) SENSITIVE,
			l_tax DECIMAL(2) SENSITIVE,
			l_returnflag STRING,
			l_linestatus STRING,
			l_shipdate DATE,
			l_commitdate DATE,
			l_receiptdate DATE,
			l_shipmode STRING)`,
	}
}

// SensitiveColumns maps lower-case column names to sensitivity; the
// coverage analyzer closes over it.
var SensitiveColumns = map[string]bool{
	"s_acctbal": true, "c_acctbal": true, "p_retailprice": true,
	"ps_supplycost": true, "o_totalprice": true,
	"l_quantity": true, "l_extendedprice": true, "l_discount": true, "l_tax": true,
}

// IsSensitive implements baseline.SensitiveFn for the TPC-H schema.
func IsSensitive(table, column string) bool {
	return SensitiveColumns[column]
}
