package attack

import (
	"math/big"
	"testing"

	"sdb/internal/engine"
	"sdb/internal/proxy"
	"sdb/internal/secure"
	"sdb/internal/storage"
)

// sentinels are distinctive balances planted at the DO; the adversary scans
// the SP for them.
var sentinels = []int64{7777777, -3141592, 9999991}

func deploy(t *testing.T) (*proxy.Proxy, *engine.Engine) {
	t.Helper()
	secret, err := secure.Setup(512, 62, 80)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(storage.NewCatalog(), secret.N())
	p, err := proxy.New(secret, eng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Exec(`CREATE TABLE vault (id INT, note STRING, amount INT SENSITIVE)`); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Exec(`INSERT INTO vault VALUES
		(1, 'a', 7777777), (2, 'b', -3141592), (3, 'c', 9999991), (4, 'd', 42)`); err != nil {
		t.Fatal(err)
	}
	return p, eng
}

// TestNoPlaintextAtSP is experiment E4: the paper's step-3 demonstration
// that neither the SP's storage nor in-flight query results contain
// sensitive plaintext.
func TestNoPlaintextAtSP(t *testing.T) {
	p, eng := deploy(t)

	// DB knowledge: scan everything on "disk".
	rep := ScanCatalog(eng.Catalog(), sentinels)
	if rep.CellsScanned == 0 {
		t.Fatal("scan visited nothing")
	}
	if !rep.Clean() {
		t.Fatalf("storage leaked: %v", rep.Findings)
	}

	// QR knowledge: run sensitive queries and scan what the SP computes
	// and returns before the proxy decrypts it.
	queries := []string{
		`SELECT amount FROM vault`,
		`SELECT SUM(amount) FROM vault`,
		`SELECT id FROM vault WHERE amount > 1000000`,
		`SELECT amount, COUNT(*) FROM vault GROUP BY amount`,
	}
	for _, q := range queries {
		res, err := p.Exec(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		// The rewritten SQL must not carry user constants in the clear.
		if r := ScanSQL(res.Stats.RewrittenSQL, append(sentinels, 1000000)); !r.Clean() {
			t.Errorf("%s: rewritten SQL leaked: %v", q, r.Findings)
		}
		// Re-run the rewritten SQL directly at the engine: the raw
		// (undecrypted) result is what a memory dump at the SP would show.
		raw, err := eng.ExecuteSQL(res.Stats.RewrittenSQL)
		if err != nil {
			t.Fatalf("raw re-run: %v", err)
		}
		if r := ScanResult(raw, sentinels); !r.Clean() {
			t.Errorf("%s: encrypted result leaked: %v", q, r.Findings)
		}
	}
}

// TestScannerDetectsDeliberateLeak sanity-checks the scanner itself: a
// table that stores plaintext in a sensitive column must be flagged. (We
// bypass the proxy to plant the leak.)
func TestScannerDetectsDeliberateLeak(t *testing.T) {
	_, eng := deploy(t)
	tbl, err := eng.Catalog().Get("vault")
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite one stored share with the raw plaintext value (mutating
	// the published version in place, as on-disk corruption would).
	idx := tbl.Schema.Find("amount")
	tbl.Load().Cols[idx][0].B = big.NewInt(7777777)
	rep := ScanCatalog(eng.Catalog(), sentinels)
	if rep.Clean() {
		t.Fatal("scanner missed a planted plaintext")
	}
}

func TestBruteForceLearnsNothing(t *testing.T) {
	// Every candidate plaintext is consistent with an observed share, so
	// DB knowledge alone cannot narrow the value down (paper §2.3).
	secret, err := secure.Setup(512, 62, 80)
	if err != nil {
		t.Fatal(err)
	}
	ck, _ := secret.NewColumnKey()
	r, _ := secret.NewRowID()
	ve, _ := secret.EncryptInt64(424242, r, ck)
	candidates := []int64{1, 2, 3, 424242, 999999, -5}
	if got := BruteForceShare(ve, secret.N(), candidates); got != len(candidates) {
		t.Errorf("consistent candidates = %d, want all %d", got, len(candidates))
	}
}

func TestScanSQLFindsLiterals(t *testing.T) {
	rep := ScanSQL("SELECT x FROM t WHERE y > 7777777", sentinels)
	if rep.Clean() {
		t.Error("expected literal hit")
	}
}
