// Package attack implements the adversary's viewpoint from the demo's step
// 3 (Figure 4): an administrator who "can get access to the disk and memory
// at any instant" at the service provider. Scan inspects everything the SP
// holds — stored tables (DB knowledge) and, via the engine, the material a
// rewritten query exposes (QR knowledge) — and searches it for planted
// sensitive plaintexts. A secure deployment yields zero hits.
package attack

import (
	"fmt"
	"math/big"
	"strings"

	"sdb/internal/bigmod"
	"sdb/internal/engine"
	"sdb/internal/storage"
	"sdb/internal/types"
)

// Finding is one leaked sentinel occurrence.
type Finding struct {
	Where    string
	Sentinel int64
}

func (f Finding) String() string {
	return fmt.Sprintf("sentinel %d visible at %s", f.Sentinel, f.Where)
}

// Report aggregates scan results.
type Report struct {
	CellsScanned int
	Findings     []Finding
}

// Clean reports whether no sentinel was found.
func (r *Report) Clean() bool { return len(r.Findings) == 0 }

// ScanCatalog sweeps every stored cell, row id and helper at the SP for the
// sentinel values — the "disk" half of the adversary's access. Sentinels
// are compared against raw stored integers (shares included: a share that
// *equals* its plaintext means encryption silently failed).
func ScanCatalog(cat *storage.Catalog, sentinels []int64) *Report {
	rep := &Report{}
	sset := make(map[int64]bool, len(sentinels))
	for _, s := range sentinels {
		sset[s] = true
	}
	for _, name := range cat.Names() {
		t, err := cat.Get(name)
		if err != nil {
			continue
		}
		ver := t.Load()
		for ci, col := range t.Schema.Columns {
			if !col.Type.Sensitive {
				continue // insensitive columns hold plaintext by design
			}
			for ri, v := range ver.Cols[ci] {
				rep.CellsScanned++
				if hit, s := matches(v, sset); hit {
					rep.Findings = append(rep.Findings, Finding{
						Where:    fmt.Sprintf("%s.%s row %d (stored share)", name, col.Name, ri),
						Sentinel: s,
					})
				}
			}
		}
		for ri, r := range ver.RowEnc {
			rep.CellsScanned++
			if r != nil && r.IsInt64() && sset[r.Int64()] {
				rep.Findings = append(rep.Findings, Finding{
					Where:    fmt.Sprintf("%s row %d (row id)", name, ri),
					Sentinel: r.Int64(),
				})
			}
		}
	}
	return rep
}

// ScanResult sweeps an encrypted query result as it leaves the SP — the
// transient "memory" half (QR knowledge). Columns the query deliberately
// reveals (plaintext projections of insensitive columns, counts, masked
// comparison signs) are expected to be plaintext; the scan flags only
// sentinel values, i.e. actual sensitive data.
func ScanResult(res *engine.Result, sentinels []int64) *Report {
	rep := &Report{}
	sset := make(map[int64]bool, len(sentinels))
	for _, s := range sentinels {
		sset[s] = true
	}
	for ri, row := range res.Rows {
		for ci, v := range row {
			rep.CellsScanned++
			if hit, s := matches(v, sset); hit {
				rep.Findings = append(rep.Findings, Finding{
					Where:    fmt.Sprintf("result row %d column %d (%s)", ri, ci, res.Columns[ci].Name),
					Sentinel: s,
				})
			}
		}
	}
	return rep
}

// ScanSQL searches rewritten SQL text for sentinel literals — constants the
// proxy failed to hide (they must travel as proxy-made tags, never in the
// clear).
func ScanSQL(sql string, sentinels []int64) *Report {
	rep := &Report{CellsScanned: 1}
	for _, s := range sentinels {
		needle := fmt.Sprintf("%d", s)
		for _, tok := range strings.FieldsFunc(sql, func(r rune) bool {
			return r == ' ' || r == '(' || r == ')' || r == ',' || r == '\n' || r == '\t'
		}) {
			if tok == needle {
				rep.Findings = append(rep.Findings, Finding{Where: "rewritten SQL literal", Sentinel: s})
			}
		}
	}
	return rep
}

// matches reports whether a stored value equals a sentinel, looking through
// both plaintext kinds and shares whose residue coincides with a sentinel.
func matches(v types.Value, sset map[int64]bool) (bool, int64) {
	switch v.K {
	case types.KindInt, types.KindDecimal, types.KindDate:
		if sset[v.I] {
			return true, v.I
		}
	case types.KindShare:
		if v.B != nil && v.B.IsInt64() && sset[v.B.Int64()] {
			return true, v.B.Int64()
		}
	}
	return false, 0
}

// BruteForceShare models the strongest DB-knowledge attack on one share:
// trying to recover the plaintext without keys. Against the multiplicative
// scheme, every candidate plaintext v' is *consistent* with the observed
// share (there is always an item key vk' = v'·ve⁻¹ explaining it), so the
// attacker learns nothing — this function demonstrates that by returning
// the count of candidate plaintexts consistent with the share, which equals
// the number of candidates tried.
func BruteForceShare(ve, n *big.Int, candidates []int64) int {
	consistent := 0
	for _, c := range candidates {
		enc := new(big.Int).Mod(big.NewInt(c), n)
		if enc.Sign() == 0 {
			if ve.Sign() == 0 {
				consistent++
			}
			continue
		}
		if !bigmod.Coprime(enc, n) {
			continue
		}
		// vk' = c·ve⁻¹ mod n exists whenever ve is invertible: the share
		// is consistent with candidate c.
		if bigmod.Coprime(ve, n) {
			consistent++
		}
	}
	return consistent
}
