// Package parallel provides the bounded worker pool used by the engine and
// the proxy to run chunked, data-parallel loops over row batches. The SDB
// paper pushes secure query processing to the service provider precisely so
// it can exploit cluster-scale parallelism (§2.2); this package is the
// single-node analogue: the per-row modular arithmetic of the secure
// operators is embarrassingly parallel, so row ranges are split into fixed
// chunks and dispatched to GOMAXPROCS-bounded workers.
//
// The same pool shape schedules resident and spilled execution alike
// (docs/architecture.md): row-range chunks for filters, projections,
// probes and aggregation partitions, and chunk-size-1 task dispatch for
// spilled work — Grace join partition pairs, aggregation partition
// merges and run pre-merge groups (docs/parallel-execution.md).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultChunkSize is the row-batch granularity: large enough that chunk
// dispatch overhead vanishes against per-row big-integer work, small enough
// to load-balance skewed chunks across workers.
const DefaultChunkSize = 1024

// Pool is a sizing policy for chunked loops. It holds no goroutines; each
// ForEachChunk call spawns and joins its own bounded worker set, so a Pool
// is safe for concurrent use and costless when idle.
type Pool struct {
	workers int
	chunk   int
}

// New builds a pool. workers <= 0 means runtime.GOMAXPROCS(0); workers == 1
// forces serial execution. chunk <= 0 means DefaultChunkSize.
func New(workers, chunk int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if chunk <= 0 {
		chunk = DefaultChunkSize
	}
	return &Pool{workers: workers, chunk: chunk}
}

// Workers returns the worker bound.
func (p *Pool) Workers() int { return p.workers }

// ChunkSize returns the chunk granularity.
func (p *Pool) ChunkSize() int { return p.chunk }

// NumChunks reports how many chunks ForEachChunk partitions [0, n) into —
// size partial-result arrays with it and index them by fn's chunk number.
func (p *Pool) NumChunks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + p.chunk - 1) / p.chunk
}

// ForEachChunk partitions [0, n) into contiguous chunks and invokes
// fn(chunk, lo, hi) for each, concurrently on up to Workers goroutines.
// chunk is the chunk's index in [0, NumChunks(n)) — callers accumulate
// per-chunk partial results into a slice slot per chunk. Chunks are
// disjoint, so fn may also write to per-row slots of a shared slice
// without synchronisation. The first error stops the dispatch of further
// chunks (in-flight chunks finish) and is returned.
func (p *Pool) ForEachChunk(n int, fn func(chunk, lo, hi int) error) error {
	chunks := p.NumChunks(n)
	if chunks == 0 {
		return nil
	}
	workers := p.workers
	if workers > chunks {
		workers = chunks
	}
	run := func(i int) error {
		lo := i * p.chunk
		hi := lo + p.chunk
		if hi > n {
			hi = n
		}
		return fn(i, lo, hi)
	}
	if workers <= 1 {
		for i := 0; i < chunks; i++ {
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		failed  atomic.Bool
		errOnce sync.Once
		firstEr error
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= chunks {
					return
				}
				if err := run(i); err != nil {
					errOnce.Do(func() { firstEr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}

// Map runs fn(i) for every i in [0, n), writing results into the returned
// slice. It is ForEachChunk specialised to the per-index gather shape used
// by projections and result decryption.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.ForEachChunk(n, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			v, err := fn(i)
			if err != nil {
				return err
			}
			out[i] = v
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
