package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestForEachChunkCoverage checks that every index is visited exactly once
// across worker counts, chunk sizes and awkward boundaries.
func TestForEachChunkCoverage(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8} {
		for _, chunk := range []int{1, 3, 7, 1024} {
			for _, n := range []int{0, 1, 2, 7, 100, 1025} {
				p := New(workers, chunk)
				seen := make([]atomic.Int32, n)
				chunksSeen := make([]atomic.Int32, p.NumChunks(n))
				err := p.ForEachChunk(n, func(ci, lo, hi int) error {
					if lo < 0 || hi > n || lo >= hi {
						return fmt.Errorf("bad chunk [%d, %d) for n=%d", lo, hi, n)
					}
					if ci < 0 || ci >= len(chunksSeen) || lo != ci*p.ChunkSize() {
						return fmt.Errorf("chunk index %d inconsistent with lo=%d", ci, lo)
					}
					chunksSeen[ci].Add(1)
					for i := lo; i < hi; i++ {
						seen[i].Add(1)
					}
					return nil
				})
				if err != nil {
					t.Fatalf("workers=%d chunk=%d n=%d: %v", workers, chunk, n, err)
				}
				for i := range seen {
					if c := seen[i].Load(); c != 1 {
						t.Fatalf("workers=%d chunk=%d n=%d: index %d visited %d times", workers, chunk, n, i, c)
					}
				}
				for ci := range chunksSeen {
					if c := chunksSeen[ci].Load(); c != 1 {
						t.Fatalf("workers=%d chunk=%d n=%d: chunk %d dispatched %d times", workers, chunk, n, ci, c)
					}
				}
			}
		}
	}
}

// TestForEachChunkError checks that an error is surfaced and stops the
// dispatch of further chunks.
func TestForEachChunkError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		p := New(workers, 10)
		var calls atomic.Int32
		err := p.ForEachChunk(10_000, func(_, lo, hi int) error {
			calls.Add(1)
			if lo == 0 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		// The first chunk fails immediately; only in-flight chunks (at most
		// one per worker plus a dispatch race margin) may still run.
		if c := calls.Load(); c > int32(workers*3) {
			t.Fatalf("workers=%d: %d chunks ran after error", workers, c)
		}
	}
}

// TestMap checks the gather specialisation.
func TestMap(t *testing.T) {
	p := New(4, 8)
	out, err := Map(p, 100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if _, err := Map(p, 100, func(i int) (int, error) {
		if i == 50 {
			return 0, errors.New("boom")
		}
		return 0, nil
	}); err == nil {
		t.Fatal("Map swallowed the error")
	}
}

// TestForEachChunkSharedCounter runs under -race as the pool's parallelism
// proof: concurrent chunks mutate disjoint slots plus one atomic total.
func TestForEachChunkSharedCounter(t *testing.T) {
	p := New(8, 16)
	const n = 50_000
	var total atomic.Int64
	out := make([]int64, n)
	if err := p.ForEachChunk(n, func(_, lo, hi int) error {
		var local int64
		for i := lo; i < hi; i++ {
			out[i] = int64(i)
			local += int64(i)
		}
		total.Add(local)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := int64(n) * (n - 1) / 2
	if total.Load() != want {
		t.Fatalf("total = %d, want %d", total.Load(), want)
	}
	for i, v := range out {
		if v != int64(i) {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
