package types

import (
	"fmt"
	"strings"
)

// ColumnType describes a column's SQL type plus SDB security metadata.
type ColumnType struct {
	Kind Kind
	// Scale is the number of decimal digits for KindDecimal (scaled-int
	// representation); zero otherwise.
	Scale int
	// Sensitive marks columns the DO encrypts before upload. Only numeric
	// kinds (INT, DECIMAL, DATE) may be sensitive; this matches SDB, whose
	// operators are arithmetic over Z_n.
	Sensitive bool
}

func (ct ColumnType) String() string {
	s := ct.Kind.String()
	if ct.Kind == KindDecimal {
		s = fmt.Sprintf("DECIMAL(%d)", ct.Scale)
	}
	if ct.Sensitive {
		s += " SENSITIVE"
	}
	return s
}

// Column is a named, typed column.
type Column struct {
	Name string
	Type ColumnType
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema, validating that sensitive columns are numeric
// and names are unique (case-insensitive).
func NewSchema(cols []Column) (Schema, error) {
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		lower := strings.ToLower(c.Name)
		if seen[lower] {
			return Schema{}, fmt.Errorf("types: duplicate column %q", c.Name)
		}
		seen[lower] = true
		if c.Type.Sensitive && !c.Type.Kind.Numeric() {
			return Schema{}, fmt.Errorf("types: column %q: only numeric columns can be SENSITIVE, got %s", c.Name, c.Type.Kind)
		}
	}
	return Schema{Columns: cols}, nil
}

// Find returns the index of the named column (case-insensitive), or -1.
func (s Schema) Find(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.Columns) }

// HasSensitive reports whether any column is sensitive.
func (s Schema) HasSensitive() bool {
	for _, c := range s.Columns {
		if c.Type.Sensitive {
			return true
		}
	}
	return false
}

// Row is one tuple of values, parallel to a schema's columns.
type Row []Value

// Clone returns a shallow copy of the row (values are immutable).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}
