package types

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{NewInt(5), KindInt},
		{NewDecimal(123), KindDecimal},
		{NewDate(100), KindDate},
		{NewString("x"), KindString},
		{NewBool(true), KindBool},
		{NewShare(big.NewInt(9)), KindShare},
		{Null, KindNull},
	}
	for _, c := range cases {
		if c.v.K != c.kind {
			t.Errorf("kind = %s, want %s", c.v.K, c.kind)
		}
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() || Null.Bool() {
		t.Error("Bool() semantics wrong")
	}
	if NewShare(big.NewInt(3)).Share().Int64() != 3 || NewInt(3).Share() != nil {
		t.Error("Share() accessor wrong")
	}
}

func TestCompareOrdering(t *testing.T) {
	if NewInt(1).Compare(NewInt(2)) != -1 || NewInt(2).Compare(NewInt(1)) != 1 || NewInt(2).Compare(NewInt(2)) != 0 {
		t.Error("int compare")
	}
	if NewString("a").Compare(NewString("b")) != -1 {
		t.Error("string compare")
	}
	if Null.Compare(NewInt(1)) != -1 || NewInt(1).Compare(Null) != 1 || Null.Compare(Null) != 0 {
		t.Error("null sorts first")
	}
	if NewShare(big.NewInt(1)).Compare(NewShare(big.NewInt(2))) != -1 {
		t.Error("share residue compare")
	}
}

func TestEqualAcrossKinds(t *testing.T) {
	if NewInt(1).Equal(NewDecimal(1)) {
		t.Error("different kinds must not be Equal")
	}
	if !NewShare(big.NewInt(5)).Equal(NewShare(big.NewInt(5))) {
		t.Error("equal shares")
	}
}

func TestGroupKeyDistinguishesKinds(t *testing.T) {
	keys := map[string]bool{}
	for _, v := range []Value{NewInt(1), NewDecimal(1), NewDate(1), NewString("1"), Null, NewShare(big.NewInt(1))} {
		k := v.GroupKey()
		if keys[k] {
			t.Errorf("group key collision at %v", v)
		}
		keys[k] = true
	}
}

func TestDates(t *testing.T) {
	v, err := ParseDate("1995-06-17")
	if err != nil {
		t.Fatal(err)
	}
	if FormatDate(v) != "1995-06-17" {
		t.Errorf("round trip: %s", FormatDate(v))
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("expected parse error")
	}
}

func TestFormatDecimal(t *testing.T) {
	cases := []struct {
		scaled int64
		scale  int
		want   string
	}{
		{12345, 2, "123.45"},
		{-12345, 2, "-123.45"},
		{5, 2, "0.05"},
		{7, 0, "7"},
		{100, 3, "0.100"},
	}
	for _, c := range cases {
		if got := FormatDecimal(c.scaled, c.scale); got != c.want {
			t.Errorf("FormatDecimal(%d, %d) = %q, want %q", c.scaled, c.scale, got, c.want)
		}
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema([]Column{
		{Name: "a", Type: ColumnType{Kind: KindInt}},
		{Name: "A", Type: ColumnType{Kind: KindInt}},
	}); err == nil {
		t.Error("duplicate names should fail")
	}
	if _, err := NewSchema([]Column{
		{Name: "s", Type: ColumnType{Kind: KindString, Sensitive: true}},
	}); err == nil {
		t.Error("sensitive string should fail")
	}
	s, err := NewSchema([]Column{
		{Name: "a", Type: ColumnType{Kind: KindInt}},
		{Name: "b", Type: ColumnType{Kind: KindDecimal, Scale: 2, Sensitive: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Find("B") != 1 || s.Find("nope") != -1 {
		t.Error("Find")
	}
	if !s.HasSensitive() || s.Len() != 2 {
		t.Error("schema accessors")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{NewInt(1), NewString("x")}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].I != 1 {
		t.Error("clone aliased the original")
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		return NewInt(a).Compare(NewInt(b)) == -NewInt(b).Compare(NewInt(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
