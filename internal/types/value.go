// Package types defines the value and schema model shared by the SDB proxy
// and the service-provider engine: typed SQL values (integers, fixed-point
// decimals, dates, strings, booleans), encrypted shares, rows and schemas.
//
// Numeric values are all backed by int64: decimals are scaled integers
// (scale tracked in the column type / expression metadata, not in the
// value), and dates are days since the Unix epoch. This is what lets every
// numeric column be encrypted under the SDB scheme uniformly.
package types

import (
	"fmt"
	"math/big"
	"strings"
	"time"
)

// Kind enumerates value kinds.
type Kind uint8

const (
	// KindNull is the SQL NULL.
	KindNull Kind = iota
	// KindInt is a 64-bit integer.
	KindInt
	// KindDecimal is a fixed-point decimal stored as a scaled integer.
	KindDecimal
	// KindDate is a calendar date stored as days since 1970-01-01.
	KindDate
	// KindString is a UTF-8 string.
	KindString
	// KindBool is a boolean.
	KindBool
	// KindShare is an SDB encrypted share (element of Z_n).
	KindShare
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindDecimal:
		return "DECIMAL"
	case KindDate:
		return "DATE"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	case KindShare:
		return "SHARE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Numeric reports whether the kind is int64-backed and thus encryptable
// under the SDB scheme.
func (k Kind) Numeric() bool {
	return k == KindInt || k == KindDecimal || k == KindDate
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	K Kind
	// I backs Int, Decimal (scaled), Date (epoch days) and Bool (0/1).
	I int64
	// S backs String.
	S string
	// B backs Share.
	B *big.Int
}

// Convenience constructors.

// NewInt returns an INT value.
func NewInt(v int64) Value { return Value{K: KindInt, I: v} }

// NewDecimal returns a DECIMAL value from an already-scaled integer.
func NewDecimal(scaled int64) Value { return Value{K: KindDecimal, I: scaled} }

// NewDate returns a DATE value from epoch days.
func NewDate(days int64) Value { return Value{K: KindDate, I: days} }

// NewString returns a STRING value.
func NewString(s string) Value { return Value{K: KindString, S: s} }

// NewBool returns a BOOL value.
func NewBool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{K: KindBool, I: i}
}

// NewShare returns a SHARE value wrapping an encrypted residue.
func NewShare(b *big.Int) Value { return Value{K: KindShare, B: b} }

// Null is the NULL value.
var Null = Value{}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Bool returns the boolean interpretation; NULL is false.
func (v Value) Bool() bool { return v.K == KindBool && v.I != 0 }

// Share returns the underlying big.Int for SHARE values, nil otherwise.
func (v Value) Share() *big.Int {
	if v.K != KindShare {
		return nil
	}
	return v.B
}

// DateFromTime converts a time to a DATE value (UTC calendar day).
func DateFromTime(t time.Time) Value {
	return NewDate(t.UTC().Unix() / 86400)
}

// ParseDate parses YYYY-MM-DD into a DATE value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null, fmt.Errorf("types: bad date %q: %w", s, err)
	}
	return DateFromTime(t), nil
}

// FormatDate renders a DATE value as YYYY-MM-DD.
func FormatDate(v Value) string {
	return time.Unix(v.I*86400, 0).UTC().Format("2006-01-02")
}

// Compare orders two values of compatible kinds: -1, 0, +1. NULL sorts
// before everything; shares compare by residue (used only for
// deterministic-tag grouping, where residue equality is value equality).
func (v Value) Compare(o Value) int {
	if v.K == KindNull || o.K == KindNull {
		switch {
		case v.K == KindNull && o.K == KindNull:
			return 0
		case v.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	switch v.K {
	case KindString:
		return strings.Compare(v.S, o.S)
	case KindShare:
		return v.B.Cmp(o.B)
	default:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		default:
			return 0
		}
	}
}

// Equal reports deep equality including kind.
func (v Value) Equal(o Value) bool {
	if v.K != o.K {
		return false
	}
	switch v.K {
	case KindNull:
		return true
	case KindString:
		return v.S == o.S
	case KindShare:
		return v.B.Cmp(o.B) == 0
	default:
		return v.I == o.I
	}
}

// GroupKey renders a value as a map key for hashing (GROUP BY, hash join).
func (v Value) GroupKey() string {
	switch v.K {
	case KindNull:
		return "∅"
	case KindString:
		return "s:" + v.S
	case KindShare:
		return "e:" + v.B.Text(62)
	default:
		return fmt.Sprintf("%d:%d", v.K, v.I)
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindDecimal:
		return fmt.Sprintf("dec(%d)", v.I)
	case KindDate:
		return FormatDate(v)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindShare:
		return "E(" + v.B.Text(16) + ")"
	default:
		return "?"
	}
}

// FormatDecimal renders a scaled decimal with the given scale, e.g.
// FormatDecimal(12345, 2) = "123.45".
func FormatDecimal(scaled int64, scale int) string {
	if scale <= 0 {
		return fmt.Sprintf("%d", scaled)
	}
	neg := scaled < 0
	if neg {
		scaled = -scaled
	}
	pow := int64(1)
	for i := 0; i < scale; i++ {
		pow *= 10
	}
	s := fmt.Sprintf("%d.%0*d", scaled/pow, scale, scaled%pow)
	if neg {
		return "-" + s
	}
	return s
}
